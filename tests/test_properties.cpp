// Property-style parameterized sweeps across the wire stack: identities
// that must hold for *every* input in a family, not just hand-picked
// examples -- codec round trips, protection inverses, grammar
// idempotence and cross-version invariants.
#include <gtest/gtest.h>

#include "crypto/rng.h"
#include "dns/wire.h"
#include "http/alt_svc.h"
#include "http/h3.h"
#include "internet/tp_catalog.h"
#include "quic/packet.h"
#include "quic/transport_params.h"
#include "tls/certificate.h"

namespace {

/// --- Transport parameters: catalog-wide wire round trip -------------

class TpCatalogRoundTrip : public ::testing::TestWithParam<int> {};

TEST_P(TpCatalogRoundTrip, EncodeDecodeIdentity) {
  const auto& entry =
      internet::tp_catalog()[static_cast<size_t>(GetParam())];
  auto encoded = quic::encode_transport_parameters(entry.params);
  auto decoded = quic::decode_transport_parameters(encoded);
  EXPECT_EQ(decoded, entry.params);
  // Re-encoding the decoded value is byte-identical (canonical form).
  EXPECT_EQ(quic::encode_transport_parameters(decoded), encoded);
  // The config key survives the wire and stays unique in the catalog.
  EXPECT_EQ(internet::tp_config_id_for_key(decoded.config_key()), entry.id);
}

INSTANTIATE_TEST_SUITE_P(AllCatalogEntries, TpCatalogRoundTrip,
                         ::testing::Range(0, internet::kTpConfigCount));

/// --- Packet protection: protect/unprotect inverse over sizes --------

struct ProtectCase {
  quic::Version version;
  size_t payload_size;
};

class ProtectionSweep : public ::testing::TestWithParam<ProtectCase> {};

TEST_P(ProtectionSweep, UnprotectInvertsProtect) {
  auto [version, payload_size] = GetParam();
  crypto::Rng rng(payload_size * 31 + version);
  auto dcid = rng.bytes(8);
  quic::Packet packet;
  packet.type = quic::PacketType::kInitial;
  packet.version = version;
  packet.dcid = dcid;
  packet.scid = rng.bytes(8);
  packet.packet_number = payload_size % 1000;
  packet.payload = rng.bytes(payload_size);
  // Avoid all-zero prefixes decoding as PADDING: content is random and
  // protection is content-agnostic anyway.
  auto protector = quic::PacketProtector::for_initial(version, dcid, false);
  auto wire_bytes = protector.protect(packet);
  size_t offset = 0;
  auto opened = protector.unprotect(wire_bytes, offset);
  ASSERT_TRUE(opened.has_value());
  EXPECT_EQ(offset, wire_bytes.size());
  if (payload_size >= 4) {
    EXPECT_EQ(opened->payload, packet.payload);
  } else {
    // Tiny payloads are padded to 4 bytes for the header-protection
    // sample; the original bytes are a prefix.
    ASSERT_GE(opened->payload.size(), payload_size);
    EXPECT_TRUE(std::equal(packet.payload.begin(), packet.payload.end(),
                           opened->payload.begin()));
  }
  EXPECT_EQ(opened->packet_number, packet.packet_number);
}

INSTANTIATE_TEST_SUITE_P(
    SizesAndVersions, ProtectionSweep,
    ::testing::Values(ProtectCase{quic::kVersion1, 0},
                      ProtectCase{quic::kVersion1, 1},
                      ProtectCase{quic::kVersion1, 4},
                      ProtectCase{quic::kVersion1, 17},
                      ProtectCase{quic::kVersion1, 1200},
                      ProtectCase{quic::kDraft29, 64},
                      ProtectCase{quic::kDraft29, 1451},
                      ProtectCase{quic::kDraft27, 333},
                      ProtectCase{quic::kDraft32, 999},
                      ProtectCase{quic::kDraft34, 10}));

/// --- Version negotiation greasing: every 0x?a?a?a?a forces VN -------

class GreasePattern : public ::testing::TestWithParam<uint32_t> {};

TEST_P(GreasePattern, ClassifiedAsForcing) {
  uint32_t prefix = GetParam();
  quic::Version version = 0x0a0a0a0a | prefix;
  EXPECT_TRUE(quic::is_force_negotiation(version));
  EXPECT_FALSE(quic::is_ietf(version));
}

INSTANTIATE_TEST_SUITE_P(HighNibbles, GreasePattern,
                         ::testing::Values(0x00000000u, 0x10203040u,
                                           0xf0f0f0f0u, 0xa0a0a0a0u,
                                           0x50607080u));

/// --- DNS name codec over structured names ---------------------------

class DnsNameSweep : public ::testing::TestWithParam<int> {};

TEST_P(DnsNameSweep, RoundTripRandomisedNames) {
  crypto::Rng rng(static_cast<uint64_t>(GetParam()));
  // Compose 1..5 labels of 1..20 chars from the hostname alphabet.
  static constexpr char kAlphabet[] =
      "abcdefghijklmnopqrstuvwxyz0123456789-";
  std::string name;
  int labels = 1 + static_cast<int>(rng.below(5));
  for (int l = 0; l < labels; ++l) {
    if (l) name.push_back('.');
    int len = 1 + static_cast<int>(rng.below(20));
    for (int i = 0; i < len; ++i)
      name.push_back(kAlphabet[rng.below(sizeof kAlphabet - 1)]);
  }
  wire::Writer w;
  dns::encode_name(w, name);
  wire::Reader r(w.span());
  EXPECT_EQ(dns::decode_name(r, w.span()), name);
  EXPECT_TRUE(r.done());
}

INSTANTIATE_TEST_SUITE_P(Seeds, DnsNameSweep, ::testing::Range(0, 25));

/// --- Alt-Svc: format-parse identity over generated entry lists ------

class AltSvcSweep : public ::testing::TestWithParam<int> {};

TEST_P(AltSvcSweep, FormatParseIdentity) {
  crypto::Rng rng(static_cast<uint64_t>(GetParam()) * 977);
  static const char* kTokens[] = {"h3",      "h3-29",  "h3-27",
                                  "h3-Q050", "quic",   "h3-34"};
  static const char* kHosts[] = {"", "alt.example.com", "cdn.example"};
  std::vector<http::AltSvcEntry> entries;
  size_t count = 1 + rng.below(4);
  for (size_t i = 0; i < count; ++i) {
    http::AltSvcEntry entry;
    entry.alpn = kTokens[rng.below(6)];
    entry.host = kHosts[rng.below(3)];
    entry.port = static_cast<uint16_t>(1 + rng.below(65535));
    if (rng.chance(0.5)) entry.max_age = rng.below(1u << 30);
    entries.push_back(std::move(entry));
  }
  auto parsed = http::parse_alt_svc(http::format_alt_svc(entries));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(*parsed, entries);
}

INSTANTIATE_TEST_SUITE_P(Seeds, AltSvcSweep, ::testing::Range(0, 25));

/// --- H3: request/response round trip over generated headers ---------

class H3Sweep : public ::testing::TestWithParam<int> {};

TEST_P(H3Sweep, ResponseRoundTrip) {
  crypto::Rng rng(static_cast<uint64_t>(GetParam()) * 1009);
  http::h3::Response response;
  response.status = 100 + static_cast<int>(rng.below(500));
  size_t headers = rng.below(6);
  for (size_t i = 0; i < headers; ++i)
    response.headers.add("x-field-" + std::to_string(i),
                         std::string(rng.below(40), 'v'));
  auto body = rng.bytes(rng.below(500));
  response.body.assign(body.begin(), body.end());
  auto decoded =
      http::h3::decode_response(http::h3::encode_response(response));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->status, response.status);
  EXPECT_EQ(decoded->headers, response.headers);
  EXPECT_EQ(decoded->body, response.body);
}

INSTANTIATE_TEST_SUITE_P(Seeds, H3Sweep, ::testing::Range(0, 20));

/// --- Certificates: wildcard matching truth table --------------------

struct WildcardCase {
  const char* pattern;
  const char* host;
  bool matches;
};

class WildcardSweep : public ::testing::TestWithParam<WildcardCase> {};

TEST_P(WildcardSweep, MatchesExpectation) {
  auto [pattern, host, matches] = GetParam();
  EXPECT_EQ(tls::wildcard_match(pattern, host), matches)
      << pattern << " vs " << host;
}

INSTANTIATE_TEST_SUITE_P(
    TruthTable, WildcardSweep,
    ::testing::Values(WildcardCase{"example.com", "example.com", true},
                      WildcardCase{"example.com", "www.example.com", false},
                      WildcardCase{"*.example.com", "www.example.com", true},
                      WildcardCase{"*.example.com", "example.com", false},
                      WildcardCase{"*.example.com", "a.b.example.com", false},
                      WildcardCase{"*.example.com", ".example.com", false},
                      WildcardCase{"*.example.com", "xexample.com", false},
                      WildcardCase{"*.co", "x.co", true},
                      WildcardCase{"*", "example.com", false},
                      WildcardCase{"", "", true}));

/// --- Retry: integrity across versions -------------------------------

class RetrySweep : public ::testing::TestWithParam<quic::Version> {};

TEST_P(RetrySweep, RoundTripAndCrossVersionRejection) {
  quic::Version version = GetParam();
  crypto::Rng rng(version);
  quic::RetryPacket retry;
  retry.version = version;
  retry.dcid = rng.bytes(8);
  retry.scid = rng.bytes(8);
  retry.token = rng.bytes(24);
  auto odcid = rng.bytes(8);
  auto bytes = quic::encode_retry(retry, odcid);
  ASSERT_TRUE(quic::decode_retry(bytes, odcid).has_value());
  // Re-tagging under a different version's keys must not validate
  // (except between versions sharing integrity keys, e.g. 33+/v1).
  quic::RetryPacket other = retry;
  other.version = version == quic::kVersion1 ? quic::kDraft29
                                             : quic::kVersion1;
  auto other_bytes = quic::encode_retry(other, odcid);
  // Patch the version field back so only the tag mismatches.
  for (int i = 0; i < 4; ++i)
    other_bytes[1 + static_cast<size_t>(i)] =
        static_cast<uint8_t>(version >> (8 * (3 - i)));
  EXPECT_FALSE(quic::decode_retry(other_bytes, odcid).has_value());
}

INSTANTIATE_TEST_SUITE_P(Versions, RetrySweep,
                         ::testing::Values(quic::kVersion1, quic::kDraft29,
                                           quic::kDraft32, quic::kDraft27,
                                           quic::kDraft28, quic::kDraft34));

}  // namespace
