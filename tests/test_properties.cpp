// Property-style parameterized sweeps across the wire stack: identities
// that must hold for *every* input in a family, not just hand-picked
// examples -- codec round trips, protection inverses, grammar
// idempotence and cross-version invariants.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <sstream>
#include <vector>

#include "crypto/aes.h"
#include "crypto/rng.h"
#include "dns/wire.h"
#include "engine/engine.h"
#include "http/alt_svc.h"
#include "http/h3.h"
#include "internet/internet.h"
#include "internet/tp_catalog.h"
#include "netsim/event_loop.h"
#include "quic/frame.h"
#include "quic/packet.h"
#include "quic/transport_params.h"
#include "scanner/qscanner.h"
#include "telemetry/metrics.h"
#include "tls/certificate.h"
#include "tls/record.h"
#include "wire/buffer.h"

namespace {

/// --- Transport parameters: catalog-wide wire round trip -------------

class TpCatalogRoundTrip : public ::testing::TestWithParam<int> {};

TEST_P(TpCatalogRoundTrip, EncodeDecodeIdentity) {
  const auto& entry =
      internet::tp_catalog()[static_cast<size_t>(GetParam())];
  auto encoded = quic::encode_transport_parameters(entry.params);
  auto decoded = quic::decode_transport_parameters(encoded);
  EXPECT_EQ(decoded, entry.params);
  // Re-encoding the decoded value is byte-identical (canonical form).
  EXPECT_EQ(quic::encode_transport_parameters(decoded), encoded);
  // The config key survives the wire and stays unique in the catalog.
  EXPECT_EQ(internet::tp_config_id_for_key(decoded.config_key()), entry.id);
}

INSTANTIATE_TEST_SUITE_P(AllCatalogEntries, TpCatalogRoundTrip,
                         ::testing::Range(0, internet::kTpConfigCount));

/// --- Packet protection: protect/unprotect inverse over sizes --------

struct ProtectCase {
  quic::Version version;
  size_t payload_size;
};

class ProtectionSweep : public ::testing::TestWithParam<ProtectCase> {};

TEST_P(ProtectionSweep, UnprotectInvertsProtect) {
  auto [version, payload_size] = GetParam();
  crypto::Rng rng(payload_size * 31 + version);
  auto dcid = rng.bytes(8);
  quic::Packet packet;
  packet.type = quic::PacketType::kInitial;
  packet.version = version;
  packet.dcid = dcid;
  packet.scid = rng.bytes(8);
  packet.packet_number = payload_size % 1000;
  packet.payload = rng.bytes(payload_size);
  // Avoid all-zero prefixes decoding as PADDING: content is random and
  // protection is content-agnostic anyway.
  auto protector = quic::PacketProtector::for_initial(version, dcid, false);
  auto wire_bytes = protector.protect(packet);
  size_t offset = 0;
  auto opened = protector.unprotect(wire_bytes, offset);
  ASSERT_TRUE(opened.has_value());
  EXPECT_EQ(offset, wire_bytes.size());
  if (payload_size >= 4) {
    EXPECT_EQ(opened->payload, packet.payload);
  } else {
    // Tiny payloads are padded to 4 bytes for the header-protection
    // sample; the original bytes are a prefix.
    ASSERT_GE(opened->payload.size(), payload_size);
    EXPECT_TRUE(std::equal(packet.payload.begin(), packet.payload.end(),
                           opened->payload.begin()));
  }
  EXPECT_EQ(opened->packet_number, packet.packet_number);
}

INSTANTIATE_TEST_SUITE_P(
    SizesAndVersions, ProtectionSweep,
    ::testing::Values(ProtectCase{quic::kVersion1, 0},
                      ProtectCase{quic::kVersion1, 1},
                      ProtectCase{quic::kVersion1, 4},
                      ProtectCase{quic::kVersion1, 17},
                      ProtectCase{quic::kVersion1, 1200},
                      ProtectCase{quic::kDraft29, 64},
                      ProtectCase{quic::kDraft29, 1451},
                      ProtectCase{quic::kDraft27, 333},
                      ProtectCase{quic::kDraft32, 999},
                      ProtectCase{quic::kDraft34, 10}));

/// --- Version negotiation greasing: every 0x?a?a?a?a forces VN -------

class GreasePattern : public ::testing::TestWithParam<uint32_t> {};

TEST_P(GreasePattern, ClassifiedAsForcing) {
  uint32_t prefix = GetParam();
  quic::Version version = 0x0a0a0a0a | prefix;
  EXPECT_TRUE(quic::is_force_negotiation(version));
  EXPECT_FALSE(quic::is_ietf(version));
}

INSTANTIATE_TEST_SUITE_P(HighNibbles, GreasePattern,
                         ::testing::Values(0x00000000u, 0x10203040u,
                                           0xf0f0f0f0u, 0xa0a0a0a0u,
                                           0x50607080u));

/// --- DNS name codec over structured names ---------------------------

class DnsNameSweep : public ::testing::TestWithParam<int> {};

TEST_P(DnsNameSweep, RoundTripRandomisedNames) {
  crypto::Rng rng(static_cast<uint64_t>(GetParam()));
  // Compose 1..5 labels of 1..20 chars from the hostname alphabet.
  static constexpr char kAlphabet[] =
      "abcdefghijklmnopqrstuvwxyz0123456789-";
  std::string name;
  int labels = 1 + static_cast<int>(rng.below(5));
  for (int l = 0; l < labels; ++l) {
    if (l) name.push_back('.');
    int len = 1 + static_cast<int>(rng.below(20));
    for (int i = 0; i < len; ++i)
      name.push_back(kAlphabet[rng.below(sizeof kAlphabet - 1)]);
  }
  wire::Writer w;
  dns::encode_name(w, name);
  wire::Reader r(w.span());
  EXPECT_EQ(dns::decode_name(r, w.span()), name);
  EXPECT_TRUE(r.done());
}

INSTANTIATE_TEST_SUITE_P(Seeds, DnsNameSweep, ::testing::Range(0, 25));

/// --- Alt-Svc: format-parse identity over generated entry lists ------

class AltSvcSweep : public ::testing::TestWithParam<int> {};

TEST_P(AltSvcSweep, FormatParseIdentity) {
  crypto::Rng rng(static_cast<uint64_t>(GetParam()) * 977);
  static const char* kTokens[] = {"h3",      "h3-29",  "h3-27",
                                  "h3-Q050", "quic",   "h3-34"};
  static const char* kHosts[] = {"", "alt.example.com", "cdn.example"};
  std::vector<http::AltSvcEntry> entries;
  size_t count = 1 + rng.below(4);
  for (size_t i = 0; i < count; ++i) {
    http::AltSvcEntry entry;
    entry.alpn = kTokens[rng.below(6)];
    entry.host = kHosts[rng.below(3)];
    entry.port = static_cast<uint16_t>(1 + rng.below(65535));
    if (rng.chance(0.5)) entry.max_age = rng.below(1u << 30);
    entries.push_back(std::move(entry));
  }
  auto parsed = http::parse_alt_svc(http::format_alt_svc(entries));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(*parsed, entries);
}

INSTANTIATE_TEST_SUITE_P(Seeds, AltSvcSweep, ::testing::Range(0, 25));

/// --- H3: request/response round trip over generated headers ---------

class H3Sweep : public ::testing::TestWithParam<int> {};

TEST_P(H3Sweep, ResponseRoundTrip) {
  crypto::Rng rng(static_cast<uint64_t>(GetParam()) * 1009);
  http::h3::Response response;
  response.status = 100 + static_cast<int>(rng.below(500));
  size_t headers = rng.below(6);
  for (size_t i = 0; i < headers; ++i)
    response.headers.add("x-field-" + std::to_string(i),
                         std::string(rng.below(40), 'v'));
  auto body = rng.bytes(rng.below(500));
  response.body.assign(body.begin(), body.end());
  auto decoded =
      http::h3::decode_response(http::h3::encode_response(response));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->status, response.status);
  EXPECT_EQ(decoded->headers, response.headers);
  EXPECT_EQ(decoded->body, response.body);
}

INSTANTIATE_TEST_SUITE_P(Seeds, H3Sweep, ::testing::Range(0, 20));

/// --- Certificates: wildcard matching truth table --------------------

struct WildcardCase {
  const char* pattern;
  const char* host;
  bool matches;
};

class WildcardSweep : public ::testing::TestWithParam<WildcardCase> {};

TEST_P(WildcardSweep, MatchesExpectation) {
  auto [pattern, host, matches] = GetParam();
  EXPECT_EQ(tls::wildcard_match(pattern, host), matches)
      << pattern << " vs " << host;
}

INSTANTIATE_TEST_SUITE_P(
    TruthTable, WildcardSweep,
    ::testing::Values(WildcardCase{"example.com", "example.com", true},
                      WildcardCase{"example.com", "www.example.com", false},
                      WildcardCase{"*.example.com", "www.example.com", true},
                      WildcardCase{"*.example.com", "example.com", false},
                      WildcardCase{"*.example.com", "a.b.example.com", false},
                      WildcardCase{"*.example.com", ".example.com", false},
                      WildcardCase{"*.example.com", "xexample.com", false},
                      WildcardCase{"*.co", "x.co", true},
                      WildcardCase{"*", "example.com", false},
                      WildcardCase{"", "", true}));

/// --- Retry: integrity across versions -------------------------------

class RetrySweep : public ::testing::TestWithParam<quic::Version> {};

TEST_P(RetrySweep, RoundTripAndCrossVersionRejection) {
  quic::Version version = GetParam();
  crypto::Rng rng(version);
  quic::RetryPacket retry;
  retry.version = version;
  retry.dcid = rng.bytes(8);
  retry.scid = rng.bytes(8);
  retry.token = rng.bytes(24);
  auto odcid = rng.bytes(8);
  auto bytes = quic::encode_retry(retry, odcid);
  ASSERT_TRUE(quic::decode_retry(bytes, odcid).has_value());
  // Re-tagging under a different version's keys must not validate
  // (except between versions sharing integrity keys, e.g. 33+/v1).
  quic::RetryPacket other = retry;
  other.version = version == quic::kVersion1 ? quic::kDraft29
                                             : quic::kVersion1;
  auto other_bytes = quic::encode_retry(other, odcid);
  // Patch the version field back so only the tag mismatches.
  for (int i = 0; i < 4; ++i)
    other_bytes[1 + static_cast<size_t>(i)] =
        static_cast<uint8_t>(version >> (8 * (3 - i)));
  EXPECT_FALSE(quic::decode_retry(other_bytes, odcid).has_value());
}

INSTANTIATE_TEST_SUITE_P(Versions, RetrySweep,
                         ::testing::Values(quic::kVersion1, quic::kDraft29,
                                           quic::kDraft32, quic::kDraft27,
                                           quic::kDraft28, quic::kDraft34));

/// --- Campaign sharding: exact, stable partitions --------------------
///
/// The engine's determinism contract (DESIGN.md "Sharded campaign
/// engine") rests on shard_ranges being an exact order-stable
/// partition for *every* (n, K), so sweep the family.

struct ShardCase {
  size_t n;
  int jobs;
};

class ShardPartitionSweep : public ::testing::TestWithParam<ShardCase> {};

TEST_P(ShardPartitionSweep, EveryTargetInExactlyOneShard) {
  auto [n, jobs] = GetParam();
  auto ranges = engine::shard_ranges(n, jobs);
  ASSERT_EQ(ranges.size(), static_cast<size_t>(jobs));

  // Contiguous and exhaustive: concatenating the ranges in shard order
  // enumerates 0..n-1 exactly once, in input order.
  size_t next = 0;
  for (const auto& range : ranges) {
    EXPECT_EQ(range.begin, next);
    EXPECT_LE(range.begin, range.end);
    next = range.end;
  }
  EXPECT_EQ(next, n);

  // Balanced: sizes differ by at most one, the first n % jobs shards
  // take the extra target.
  size_t base = n / static_cast<size_t>(jobs);
  size_t extra = n % static_cast<size_t>(jobs);
  for (size_t s = 0; s < ranges.size(); ++s)
    EXPECT_EQ(ranges[s].size(), base + (s < extra ? 1 : 0));

  // shard_of is the partition's inverse map.
  for (size_t i = 0; i < n; ++i) {
    int s = engine::shard_of(i, n, jobs);
    ASSERT_GE(s, 0);
    ASSERT_LT(s, jobs);
    EXPECT_GE(i, ranges[static_cast<size_t>(s)].begin);
    EXPECT_LT(i, ranges[static_cast<size_t>(s)].end);
  }
}

TEST_P(ShardPartitionSweep, AssignmentIsStable) {
  auto [n, jobs] = GetParam();
  // Pure function of (n, jobs): recomputation never reshuffles targets.
  EXPECT_EQ(engine::shard_ranges(n, jobs), engine::shard_ranges(n, jobs));
  for (size_t i = 0; i < n; ++i)
    EXPECT_EQ(engine::shard_of(i, n, jobs), engine::shard_of(i, n, jobs));
}

INSTANTIATE_TEST_SUITE_P(
    SizesAndShardCounts, ShardPartitionSweep,
    ::testing::Values(ShardCase{0, 1}, ShardCase{0, 4}, ShardCase{1, 1},
                      ShardCase{1, 8}, ShardCase{5, 7}, ShardCase{7, 3},
                      ShardCase{16, 4}, ShardCase{97, 8}, ShardCase{100, 13},
                      ShardCase{1000, 8}, ShardCase{2605, 16}));

TEST(ShardSeedSweep, Shard0InheritsCampaignSeedOthersDiverge) {
  for (uint64_t seed : {0ull, 1ull, 0x5ca9ull, 0x9e3779b97f4a7c15ull}) {
    EXPECT_EQ(engine::shard_seed(seed, 0), seed);
    // Distinct across shard indices (no shared connection entropy).
    std::vector<uint64_t> seeds;
    for (uint32_t s = 0; s < 32; ++s)
      seeds.push_back(engine::shard_seed(seed, s));
    std::sort(seeds.begin(), seeds.end());
    EXPECT_EQ(std::adjacent_find(seeds.begin(), seeds.end()), seeds.end());
  }
}

TEST(ShardPartitionBoundaries, ShardOfIsExactAtFatThinBoundary) {
  // shard_of is O(1) arithmetic over the balanced partition; the
  // delicate spots are the boundary between the first n % jobs "fat"
  // shards (base+1 targets) and the "thin" rest, plus each range's
  // first/last index. Sweep partitions with a nonzero remainder and
  // pin every boundary index to the range that owns it.
  struct Case {
    size_t n;
    int jobs;
  };
  for (auto [n, jobs] : {Case{5, 7}, Case{7, 3}, Case{97, 8}, Case{100, 13},
                         Case{1000, 7}, Case{2605, 16}, Case{8, 8},
                         Case{9, 8}, Case{15, 4}}) {
    SCOPED_TRACE("n=" + std::to_string(n) + " jobs=" + std::to_string(jobs));
    auto ranges = engine::shard_ranges(n, jobs);
    size_t base = n / static_cast<size_t>(jobs);
    size_t extra = n % static_cast<size_t>(jobs);
    size_t fat_end = extra * (base + 1);  // first index owned thin-side
    for (size_t s = 0; s < ranges.size(); ++s) {
      if (ranges[s].size() == 0) continue;
      EXPECT_EQ(engine::shard_of(ranges[s].begin, n, jobs),
                static_cast<int>(s));
      EXPECT_EQ(engine::shard_of(ranges[s].end - 1, n, jobs),
                static_cast<int>(s));
    }
    if (extra > 0 && fat_end < n) {
      // Last fat index and first thin index land on adjacent shards.
      EXPECT_EQ(engine::shard_of(fat_end - 1, n, jobs),
                static_cast<int>(extra) - 1);
      EXPECT_EQ(engine::shard_of(fat_end, n, jobs), static_cast<int>(extra));
    }
  }
}

/// --- Dynamic chunk scheduler: partitions, seeds, steal stress -------
///
/// The dynamic scheduler's determinism contract (DESIGN.md "Dynamic
/// chunk scheduler") rests on chunk_ranges being an exact order-stable
/// partition and chunk_seed being a pure function of (seed, index).

TEST(ChunkPartitionSweep, ConcatenationIsExactlyZeroToN) {
  struct Case {
    size_t n;
    size_t chunk;
  };
  for (auto [n, chunk] :
       {Case{0, 1}, Case{0, 64}, Case{1, 1}, Case{1, 7}, Case{5, 7},
        Case{7, 3}, Case{48, 1}, Case{48, 7}, Case{48, 48}, Case{48, 64},
        Case{97, 8}, Case{100, 13}, Case{1000, 64}, Case{2605, 16}}) {
    SCOPED_TRACE("n=" + std::to_string(n) +
                 " chunk=" + std::to_string(chunk));
    auto ranges = engine::chunk_ranges(n, chunk);

    // n == 0 clamps to one empty chunk (the campaign still runs one
    // world); chunk_size > n clamps to a single [0, n) chunk.
    if (n == 0) {
      ASSERT_EQ(ranges.size(), 1u);
      EXPECT_EQ(ranges[0], (engine::ShardRange{0, 0}));
    } else {
      ASSERT_EQ(ranges.size(), (n + chunk - 1) / chunk);
      if (chunk >= n) {
        ASSERT_EQ(ranges.size(), 1u);
        EXPECT_EQ(ranges[0], (engine::ShardRange{0, n}));
      }
    }

    // Contiguous, exhaustive, no overlap: concatenating in chunk order
    // enumerates 0..n-1 exactly once.
    size_t next = 0;
    for (const auto& range : ranges) {
      EXPECT_EQ(range.begin, next);
      EXPECT_LE(range.begin, range.end);
      next = range.end;
    }
    EXPECT_EQ(next, n);

    // Every chunk except the tail spans exactly chunk_size targets.
    for (size_t c = 0; c + 1 < ranges.size(); ++c)
      EXPECT_EQ(ranges[c].size(), chunk);

    // Pure function of (n, chunk_size).
    EXPECT_EQ(engine::chunk_ranges(n, chunk), ranges);
  }
  // chunk_size 0 clamps to 1.
  EXPECT_EQ(engine::chunk_ranges(5, 0), engine::chunk_ranges(5, 1));
}

TEST(ChunkSeedSweep, Chunk0InheritsCampaignSeedOthersDistinct) {
  for (uint64_t seed : {0ull, 1ull, 0x5ca9ull, 0x9e3779b97f4a7c15ull}) {
    // Chunk 0 inherits the campaign seed: a one-chunk dynamic campaign
    // is bit-compatible with the serial path.
    EXPECT_EQ(engine::chunk_seed(seed, 0), seed);
    // Stable and distinct across chunk indices.
    std::vector<uint64_t> seeds;
    for (size_t c = 0; c < 256; ++c) {
      seeds.push_back(engine::chunk_seed(seed, c));
      EXPECT_EQ(engine::chunk_seed(seed, c), seeds.back());
    }
    std::sort(seeds.begin(), seeds.end());
    EXPECT_EQ(std::adjacent_find(seeds.begin(), seeds.end()), seeds.end());
  }
}

TEST(DynamicSchedulerStress, StealScheduleNeverChangesMergedOutput) {
  // The TSan-tree stress test: 64 single-target chunks on 8 workers,
  // each chunk burning a pseudorandom (chunk-seed-derived) amount of
  // virtual time, so workers drain the cursor in a different
  // interleaving on every repeat. Zero drift allowed: the merged
  // metrics JSON must be byte-identical across 8 repeats, and the
  // scheduler must hand out every chunk exactly once.
  constexpr size_t kTargets = 64;
  constexpr int kRepeats = 8;
  auto snapshot = std::make_shared<const internet::Snapshot>(
      internet::PopulationParams{.dns_corpus_scale = 0.002}, 18);

  std::string baseline;
  for (int repeat = 0; repeat < kRepeats; ++repeat) {
    SCOPED_TRACE("repeat=" + std::to_string(repeat));
    engine::CampaignOptions options;
    options.jobs = 8;
    options.seed = 0x57ea1;
    options.schedule = engine::Schedule::kDynamic;
    options.chunk_size = 1;  // 64 chunks
    options.snapshot = snapshot;
    engine::Campaign campaign(options);
    ASSERT_EQ(campaign.slot_count(kTargets), kTargets);

    campaign.run(kTargets, [](engine::ShardEnv& env) {
      // Randomized per-chunk virtual-time cost: a chain of timer
      // events whose count and spacing derive from the chunk seed.
      crypto::Rng rng(env.seed);
      uint64_t events = 1 + rng.below(40);
      uint64_t fired = 0;
      for (uint64_t e = 0; e < events; ++e)
        env.loop->schedule_in(rng.below(5000), [&fired] { ++fired; });
      env.loop->run();
      env.metrics->counter("stress.chunks").add(1);
      env.metrics->counter("stress.events").add(fired);
      env.metrics->counter("stress.virtual_end_us").add(env.loop->now_us());
    });

    std::ostringstream json;
    campaign.metrics().write_json(json);
    const auto* chunks = campaign.metrics().find_counter("stress.chunks");
    ASSERT_NE(chunks, nullptr);
    EXPECT_EQ(chunks->value(), kTargets);  // every chunk ran exactly once
    if (repeat == 0) {
      baseline = json.str();
      EXPECT_FALSE(baseline.empty());
    } else {
      EXPECT_EQ(json.str(), baseline);
    }
  }
}

/// --- Adversary fabric: merged output is schedule/partition free ------
///
/// The misbehaving-endpoint overlay (DESIGN.md "Adversarial endpoints")
/// keys every per-host plan on (population seed, host address) alone,
/// so the merged campaign output under *every* adversary profile must
/// be a pure function of the option set: byte-identical across
/// --jobs 1/2/4/8 and both steal schedules.

struct AdversarySweepRun {
  std::vector<std::string> rows;
  std::string metrics_json;
};

AdversarySweepRun run_adversary_campaign(
    const std::shared_ptr<const internet::Snapshot>& snapshot,
    const std::vector<scanner::QscanTarget>& targets,
    const std::string& adversary, int jobs, engine::Schedule schedule) {
  engine::CampaignOptions options;
  options.jobs = jobs;
  options.seed = 0x5ca9;
  options.schedule = schedule;
  options.chunk_size = 7;
  options.snapshot = snapshot;
  options.adversary = adversary;
  engine::Campaign campaign(options);

  const size_t slots = campaign.slot_count(targets.size());
  std::vector<std::vector<scanner::QscanResult>> shard_rows(slots);
  campaign.run(targets.size(), [&](engine::ShardEnv& env) {
    scanner::QscanOptions qopt;
    qopt.seed = env.seed;
    qopt.metrics = env.metrics;
    scanner::QScanner qscanner(env.internet->network(), qopt);
    auto& rows = shard_rows[static_cast<size_t>(env.shard_index)];
    for (size_t i = env.range.begin; i < env.range.end; ++i) {
      if (!qscanner.compatible(targets[i])) continue;
      rows.push_back(qscanner.scan_one(targets[i]));
    }
  });

  AdversarySweepRun run;
  for (const auto& result : engine::concat_shards(std::move(shard_rows))) {
    std::ostringstream row;
    row << result.target.address.to_string() << ','
        << scanner::to_string(result.outcome) << ','
        << quic::to_string(result.report.protocol_error);
    run.rows.push_back(row.str());
  }
  std::ostringstream json;
  campaign.metrics().write_json(json);
  run.metrics_json = json.str();
  return run;
}

TEST(AdversaryPropertySweep, MergedOutputInvariantAcrossJobsAndSchedules) {
  auto snapshot = std::make_shared<const internet::Snapshot>(
      internet::PopulationParams{.dns_corpus_scale = 0.002}, 18);
  std::vector<scanner::QscanTarget> targets;
  {
    netsim::EventLoop loop;
    internet::Internet net(snapshot, loop);
    for (const auto& host : net.population().hosts()) {
      if (!host.address.is_v4()) continue;
      targets.push_back({host.address, std::nullopt,
                         host.advertised_versions});
      if (targets.size() >= 40) break;
    }
  }
  ASSERT_FALSE(targets.empty());

  for (std::string_view profile : internet::adversary_profile_names()) {
    SCOPED_TRACE(std::string(profile));
    auto baseline = run_adversary_campaign(snapshot, targets,
                                           std::string(profile), 1,
                                           engine::Schedule::kStatic);
    EXPECT_FALSE(baseline.rows.empty());
    for (auto schedule :
         {engine::Schedule::kStatic, engine::Schedule::kDynamic}) {
      for (int jobs : {2, 4, 8}) {
        SCOPED_TRACE(std::string(engine::schedule_name(schedule)) +
                     " jobs=" + std::to_string(jobs));
        auto run = run_adversary_campaign(snapshot, targets,
                                          std::string(profile), jobs,
                                          schedule);
        EXPECT_EQ(run.rows, baseline.rows);
        EXPECT_EQ(run.metrics_json, baseline.metrics_json);
      }
    }
  }
}

/// --- Metrics merge: associative, commutative, order-independent -----
///
/// The campaign folds shard registries in shard-index order, but the
/// contract says the order is immaterial; hold the algebra to that.

telemetry::Histogram sample_histogram(uint64_t seed, int samples) {
  telemetry::Histogram h({10, 100, 1000});
  crypto::Rng rng(seed);
  for (int i = 0; i < samples; ++i)
    h.observe(rng.below(5000));  // spills into the overflow bucket
  return h;
}

void expect_same_histogram(const telemetry::Histogram& a,
                           const telemetry::Histogram& b) {
  EXPECT_EQ(a.bucket_counts(), b.bucket_counts());
  EXPECT_EQ(a.count(), b.count());
  EXPECT_EQ(a.sum(), b.sum());
  EXPECT_EQ(a.min(), b.min());
  EXPECT_EQ(a.max(), b.max());
}

TEST(HistogramMergeAlgebra, AssociativeAndCommutative) {
  auto a = sample_histogram(1, 40);
  auto b = sample_histogram(2, 25);
  auto c = sample_histogram(3, 0);  // one empty operand in the mix

  auto ab_c = a;        // (a + b) + c
  ab_c.merge_from(b);
  ab_c.merge_from(c);
  auto bc = b;          // a + (b + c)
  bc.merge_from(c);
  auto a_bc = a;
  a_bc.merge_from(bc);
  auto cba = c;         // (c + b) + a  -- commuted fold
  cba.merge_from(b);
  cba.merge_from(a);

  expect_same_histogram(ab_c, a_bc);
  expect_same_histogram(ab_c, cba);
}

TEST(RegistryMergeAlgebra, FoldOrderDoesNotChangeTheJson) {
  // Three shard-like registries with overlapping and disjoint names,
  // as produced by shards that saw different outcome mixes.
  auto make = [](uint64_t seed, bool with_extra) {
    auto registry = std::make_unique<telemetry::MetricsRegistry>();
    crypto::Rng rng(seed);
    registry->counter("qscan.attempts").add(rng.range(1, 50));
    registry->gauge("loop.depth").set(static_cast<int64_t>(seed));
    auto& h = registry->histogram("rtt", {10, 100, 1000});
    for (int i = 0; i < 20; ++i) h.observe(rng.below(5000));
    if (with_extra) registry->counter("qscan.outcome.timeout").add(seed);
    return registry;
  };
  auto r1 = make(1, true);
  auto r2 = make(2, false);
  auto r3 = make(3, true);

  auto fold = [](std::vector<const telemetry::MetricsRegistry*> order) {
    telemetry::MetricsRegistry merged;
    for (const auto* r : order) merged.merge_from(*r);
    std::ostringstream json;
    merged.write_json(json);
    return json.str();
  };

  auto forward = fold({r1.get(), r2.get(), r3.get()});
  EXPECT_EQ(forward, fold({r3.get(), r1.get(), r2.get()}));
  EXPECT_EQ(forward, fold({r2.get(), r3.get(), r1.get()}));
  EXPECT_NE(forward, fold({r1.get(), r2.get()}));  // merge is not lossy
}

/// --- Hot-path append APIs: byte-identical to return-by-value --------
//
// PR 3 converts the packet path to append-into-caller-buffer APIs with
// reusable scratch; these sweeps pin the contract that every new entry
// point produces exactly the bytes of the old return-by-value one, over
// randomized keys, sizes and buffer-reuse patterns.

class AppendApiSweep : public ::testing::TestWithParam<int> {};

TEST_P(AppendApiSweep, GcmSealOpenAppendMatchesReturnByValue) {
  crypto::Rng rng(static_cast<uint64_t>(GetParam()) * 7919 + 13);
  auto key = rng.bytes(16);
  crypto::Aes128Gcm gcm(key);
  std::vector<uint8_t> sealed_acc = rng.bytes(rng.below(9));
  for (int round = 0; round < 8; ++round) {
    auto nonce = rng.bytes(12);
    auto aad = rng.bytes(rng.below(40));
    auto plaintext = rng.bytes(rng.below(300));

    auto sealed = gcm.seal(nonce, aad, plaintext);
    const auto prefix = sealed_acc;
    gcm.seal_append(nonce, aad, plaintext, sealed_acc);
    ASSERT_EQ(sealed_acc.size(), prefix.size() + sealed.size());
    EXPECT_TRUE(std::equal(prefix.begin(), prefix.end(), sealed_acc.begin()));
    EXPECT_TRUE(
        std::equal(sealed.begin(), sealed.end(),
                   sealed_acc.begin() + static_cast<long>(prefix.size())));

    auto opened = gcm.open(nonce, aad, sealed);
    ASSERT_TRUE(opened.has_value());
    std::vector<uint8_t> opened_acc = rng.bytes(rng.below(5));
    const auto opened_prefix = opened_acc;
    ASSERT_TRUE(gcm.open_append(nonce, aad, sealed, opened_acc));
    ASSERT_EQ(opened_acc.size(), opened_prefix.size() + opened->size());
    EXPECT_TRUE(std::equal(opened->begin(), opened->end(),
                           opened_acc.begin() +
                               static_cast<long>(opened_prefix.size())));

    // A corrupted tag must fail and leave the output buffer untouched.
    auto corrupt = sealed;
    corrupt.back() ^= 0x01;
    auto before = opened_acc;
    EXPECT_FALSE(gcm.open_append(nonce, aad, corrupt, opened_acc));
    EXPECT_EQ(opened_acc, before);
  }
}

TEST_P(AppendApiSweep, ProtectIntoMatchesProtectAndCoalesces) {
  crypto::Rng rng(static_cast<uint64_t>(GetParam()) * 104729 + 7);
  auto dcid = rng.bytes(8);
  auto protector =
      quic::PacketProtector::for_initial(quic::kVersion1, dcid, false);

  std::vector<uint8_t> coalesced;
  std::vector<uint8_t> expected;
  quic::Packet reused;  // rx scratch reused across every round
  for (int round = 0; round < 6; ++round) {
    quic::Packet packet;
    packet.type = round % 2 ? quic::PacketType::kHandshake
                            : quic::PacketType::kInitial;
    packet.version = quic::kVersion1;
    packet.dcid = dcid;
    packet.scid = rng.bytes(8);
    packet.packet_number = static_cast<uint64_t>(round);
    packet.payload = rng.bytes(4 + rng.below(600));

    auto alone = protector.protect(packet);
    protector.protect_into(packet, packet.payload, coalesced);
    expected.insert(expected.end(), alone.begin(), alone.end());
    ASSERT_EQ(coalesced, expected) << "round " << round;
  }

  // Walking the coalesced datagram with the reusing unprotect_into
  // recovers each packet identically to the allocating unprotect.
  size_t offset = 0, check_offset = 0;
  for (int round = 0; round < 6; ++round) {
    auto fresh = protector.unprotect(coalesced, check_offset);
    ASSERT_TRUE(fresh.has_value());
    ASSERT_TRUE(protector.unprotect_into(coalesced, offset, reused));
    EXPECT_EQ(offset, check_offset);
    EXPECT_EQ(reused.packet_number, fresh->packet_number);
    EXPECT_EQ(reused.dcid, fresh->dcid);
    EXPECT_EQ(reused.scid, fresh->scid);
    EXPECT_EQ(reused.token, fresh->token);
    EXPECT_EQ(reused.payload, fresh->payload);
  }
  EXPECT_EQ(offset, coalesced.size());
}

TEST_P(AppendApiSweep, FrameEncodeIntoReusedWriterMatchesEncodeFrames) {
  crypto::Rng rng(static_cast<uint64_t>(GetParam()) * 65537 + 3);
  wire::Writer reused;
  for (int round = 0; round < 10; ++round) {
    std::vector<quic::Frame> frames;
    size_t count = 1 + rng.below(6);
    for (size_t i = 0; i < count; ++i) {
      switch (rng.below(6)) {
        case 0: frames.push_back(quic::PaddingFrame{1 + rng.below(50)}); break;
        case 1: frames.push_back(quic::PingFrame{}); break;
        case 2:
          frames.push_back(quic::AckFrame{rng.below(1000), rng.below(100),
                                          rng.below(10), {}});
          break;
        case 3:
          frames.push_back(
              quic::CryptoFrame{rng.below(1 << 14), rng.bytes(rng.below(80))});
          break;
        case 4:
          frames.push_back(quic::StreamFrame{rng.below(64), rng.below(1 << 14),
                                             rng.below(2) == 0,
                                             rng.bytes(rng.below(80))});
          break;
        default: frames.push_back(quic::HandshakeDoneFrame{}); break;
      }
    }
    auto expected = quic::encode_frames(frames);
    reused.clear();  // capacity survives; contents must not
    quic::encode_frames_into(reused, frames);
    ASSERT_EQ(std::vector<uint8_t>(reused.span().begin(), reused.span().end()),
              expected)
        << "round " << round;
    auto decoded = quic::decode_frames(reused.span());
    auto reference = quic::decode_frames(expected);
    EXPECT_EQ(decoded, reference);
  }
}

TEST_P(AppendApiSweep, WireAppendPrimitivesMatchWriter) {
  crypto::Rng rng(static_cast<uint64_t>(GetParam()) * 31 + 1);
  wire::Writer w;
  std::vector<uint8_t> appended;
  for (int i = 0; i < 200; ++i) {
    uint64_t v = rng.next() >> rng.below(64);
    switch (rng.below(6)) {
      case 0: w.u8(static_cast<uint8_t>(v));
              wire::append_u8(appended, static_cast<uint8_t>(v)); break;
      case 1: w.u16(static_cast<uint16_t>(v));
              wire::append_u16(appended, static_cast<uint16_t>(v)); break;
      case 2: w.u32(static_cast<uint32_t>(v));
              wire::append_u32(appended, static_cast<uint32_t>(v)); break;
      case 3: w.u64(v); wire::append_u64(appended, v); break;
      case 4: {
        uint64_t varint = v & wire::kVarintMax;
        w.varint(varint);
        wire::append_varint(appended, varint);
        break;
      }
      default: {
        auto blob = rng.bytes(rng.below(20));
        w.bytes(blob);
        wire::append_bytes(appended, blob);
        break;
      }
    }
  }
  EXPECT_EQ(std::vector<uint8_t>(w.span().begin(), w.span().end()), appended);
}

TEST_P(AppendApiSweep, RecordSealIntoMatchesSeal) {
  crypto::Rng rng(static_cast<uint64_t>(GetParam()) * 2654435761u + 17);
  tls::TrafficKeys keys;
  keys.key = rng.bytes(16);
  keys.iv = rng.bytes(12);
  // Two crypters with the same keys advance their sequence numbers in
  // lockstep, one per API under test.
  tls::RecordCrypter by_value(keys);
  tls::RecordCrypter by_append(keys);
  std::vector<uint8_t> flight;
  std::vector<uint8_t> expected;
  for (int round = 0; round < 8; ++round) {
    auto payload = rng.bytes(rng.below(400));
    auto record = by_value.seal(tls::ContentType::kHandshake, payload);
    by_append.seal_into(tls::ContentType::kHandshake, payload, flight);
    expected.insert(expected.end(), record.begin(), record.end());
    ASSERT_EQ(flight, expected) << "round " << round;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AppendApiSweep, ::testing::Range(0, 12));

}  // namespace
