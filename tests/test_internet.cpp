// Synthetic-internet model tests: AS registry attribution, the TP
// catalog invariants the paper states, population structure and weekly
// evolution rules.
#include <gtest/gtest.h>

#include <set>

#include "internet/internet.h"

namespace {

using namespace internet;

TEST(AsRegistry, Table7AsesPresent) {
  auto reg = AsRegistry::standard(10);
  EXPECT_EQ(reg.name(kAsCloudflare), "Cloudflare, Inc.");
  EXPECT_EQ(reg.name(kAsGoogle), "Google LLC");
  EXPECT_EQ(reg.name(kAsFastly), "Fastly");
  EXPECT_EQ(reg.name(kAsHostinger), "Hostinger International Limited");
  EXPECT_EQ(reg.name(999999), "AS999999");
}

TEST(AsRegistry, LongestPrefixAttribution) {
  auto reg = AsRegistry::standard(10);
  auto addr = reg.allocate(kAsCloudflare, netsim::Family::kIpv4, 0);
  EXPECT_EQ(reg.asn_for(addr), kAsCloudflare);
  auto addr6 = reg.allocate(kAsGoogle, netsim::Family::kIpv6, 5);
  EXPECT_EQ(reg.asn_for(addr6), kAsGoogle);
  EXPECT_EQ(reg.asn_for(netsim::IpAddress::v4(0x08080808)), 0u);
}

TEST(AsRegistry, AllocationsAreDistinctAndStable) {
  auto reg = AsRegistry::standard(10);
  std::set<netsim::IpAddress> seen;
  for (uint64_t i = 0; i < 100; ++i) {
    auto addr = reg.allocate(kAsCloudflare, netsim::Family::kIpv4, i);
    EXPECT_TRUE(seen.insert(addr).second) << i;
    EXPECT_EQ(addr, reg.allocate(kAsCloudflare, netsim::Family::kIpv4, i));
  }
}

TEST(TpCatalog, ExactlyFortyFiveDistinctConfigs) {
  const auto& catalog = tp_catalog();
  ASSERT_EQ(catalog.size(), 45u);
  std::set<std::string> keys;
  for (const auto& entry : catalog)
    EXPECT_TRUE(keys.insert(entry.params.config_key()).second)
        << "duplicate config " << entry.id;
}

TEST(TpCatalog, PaperStatedConstraints) {
  const auto& catalog = tp_catalog();
  // Cloudflare: 1 MiB stream data, 10x initial max data.
  const auto& cf = catalog[kTpConfigCloudflare].params;
  EXPECT_EQ(cf.initial_max_stream_data_bidi_local, 1048576u);
  EXPECT_EQ(cf.initial_max_data, 10485760u);
  // Facebook AS vs POP configs differ only in udp payload / stream data.
  EXPECT_EQ(catalog[kTpConfigMvfstAs1500].params.max_udp_payload_size, 1500u);
  EXPECT_EQ(catalog[kTpConfigMvfstAs1404].params.max_udp_payload_size, 1404u);
  EXPECT_EQ(catalog[kTpConfigMvfstPop1500]
                .params.initial_max_stream_data_bidi_local,
            67584u);
  // 12 configs at the 65527 default, 12 at 1500, 10 distinct values.
  int defaults = 0, at_1500 = 0;
  std::set<uint64_t> distinct;
  for (const auto& entry : catalog) {
    uint64_t effective = entry.params.effective_max_udp_payload_size();
    distinct.insert(effective);
    if (effective == 65527) ++defaults;
    if (effective == 1500) ++at_1500;
  }
  EXPECT_EQ(defaults, 12);
  EXPECT_EQ(at_1500, 12);
  EXPECT_EQ(distinct.size(), 10u);
  // Ranges: data 8 KiB .. 16 MiB, stream data 32 KiB .. 10 MiB.
  uint64_t min_data = UINT64_MAX, max_data = 0, min_stream = UINT64_MAX,
           max_stream = 0;
  for (const auto& entry : catalog) {
    if (entry.params.initial_max_data) {
      min_data = std::min(min_data, *entry.params.initial_max_data);
      max_data = std::max(max_data, *entry.params.initial_max_data);
    }
    if (entry.params.initial_max_stream_data_bidi_local) {
      min_stream =
          std::min(min_stream, *entry.params.initial_max_stream_data_bidi_local);
      max_stream =
          std::max(max_stream, *entry.params.initial_max_stream_data_bidi_local);
    }
  }
  EXPECT_EQ(min_data, 8192u);
  EXPECT_EQ(max_data, 16777216u);
  EXPECT_EQ(min_stream, 32768u);
  EXPECT_EQ(max_stream, 10485760u);
}

TEST(TpCatalog, RoundTripThroughWireFormatPreservesConfigId) {
  for (const auto& entry : tp_catalog()) {
    auto decoded = quic::decode_transport_parameters(
        quic::encode_transport_parameters(entry.params));
    EXPECT_EQ(tp_config_id_for_key(decoded.config_key()), entry.id);
  }
}

class PopulationTest : public ::testing::Test {
 protected:
  static const Population& week18() {
    static Population population({.dns_corpus_scale = 0.01}, 18);
    return population;
  }
};

TEST_F(PopulationTest, AddressesUniqueAndAttributable) {
  std::set<netsim::IpAddress> seen;
  for (const auto& host : week18().hosts()) {
    EXPECT_TRUE(seen.insert(host.address).second)
        << host.address.to_string();
    EXPECT_EQ(week18().as_registry().asn_for(host.address), host.asn)
        << host.address.to_string();
  }
}

TEST_F(PopulationTest, GroupBehaviorsMatchDesign) {
  size_t cf = 0, mismatch = 0, stall = 0, vn_silent_v6 = 0;
  for (const auto& host : week18().hosts()) {
    if (host.group == "cloudflare") {
      ++cf;
      // Week 18: v1 deployed (Figure 5's flip).
      EXPECT_TRUE(std::find(host.handshake_versions.begin(),
                            host.handshake_versions.end(),
                            quic::kVersion1) != host.handshake_versions.end());
    }
    if (host.group == "google-mismatch") {
      ++mismatch;
      // Advertises draft-29 but cannot handshake it.
      EXPECT_TRUE(std::find(host.advertised_versions.begin(),
                            host.advertised_versions.end(),
                            quic::kDraft29) != host.advertised_versions.end());
      EXPECT_TRUE(std::find(host.handshake_versions.begin(),
                            host.handshake_versions.end(),
                            quic::kDraft29) == host.handshake_versions.end());
    }
    if (host.group == "akamai") {
      ++stall;
      EXPECT_TRUE(host.stall_handshake);
    }
    if (host.group == "hostinger" && host.address.is_v6()) {
      ++vn_silent_v6;
      EXPECT_FALSE(host.respond_to_vn);
    }
  }
  EXPECT_GT(cf, 0u);
  EXPECT_GT(mismatch, 0u);
  EXPECT_GT(stall, 0u);
  EXPECT_GT(vn_silent_v6, 100u);  // the Alt-Svc-only v6 fleet
}

TEST_F(PopulationTest, DomainsPointAtTheirHosts) {
  const auto& pop = week18();
  size_t stale_records = 0, registered = 0;
  for (const auto& domain : pop.domains()) {
    ASSERT_FALSE(domain.v4_hosts.empty() && domain.v6_hosts.empty())
        << domain.name;
    // The primary record always serves the domain; later records may be
    // stale (intentionally unregistered -- the paper's SNI failures).
    if (!domain.v4_hosts.empty()) {
      uint32_t first = domain.v4_hosts[0];
      ASSERT_LT(first, pop.hosts().size());
      EXPECT_TRUE(pop.hosts()[first].domain_ids.contains(domain.id))
          << domain.name;
    }
    for (uint32_t h : domain.v4_hosts) {
      ASSERT_LT(h, pop.hosts().size());
      EXPECT_TRUE(pop.hosts()[h].address.is_v4());
      if (pop.hosts()[h].domain_ids.contains(domain.id))
        ++registered;
      else
        ++stale_records;
    }
    for (uint32_t h : domain.v6_hosts)
      EXPECT_TRUE(pop.hosts()[h].address.is_v6());
  }
  // Stale records exist but stay a small minority.
  EXPECT_GT(stale_records, 0u);
  EXPECT_LT(stale_records, registered / 5);
}

TEST_F(PopulationTest, AllTpConfigsRepresented) {
  std::set<int> used;
  for (const auto& host : week18().hosts())
    if (host.quic_enabled()) used.insert(host.tp_config);
  // Figure 9 needs all 45 configurations observable.
  EXPECT_EQ(used.size(), 45u);
}

TEST(PopulationEvolution, GrowsAcrossWeeks) {
  Population early({.dns_corpus_scale = 0.01}, 5);
  Population late({.dns_corpus_scale = 0.01}, 18);
  EXPECT_LT(early.hosts().size(), late.hosts().size());
  EXPECT_LT(early.domains().size(), late.domains().size());
}

TEST(PopulationEvolution, CloudflareVersionFlipAtWeek16) {
  Population before({.dns_corpus_scale = 0.01}, 15);
  for (const auto& host : before.hosts()) {
    if (host.group != "cloudflare") continue;
    EXPECT_TRUE(std::find(host.handshake_versions.begin(),
                          host.handshake_versions.end(),
                          quic::kVersion1) == host.handshake_versions.end());
  }
}

TEST(PopulationEvolution, HttpsRrAdoptionGrows) {
  auto count_https = [](const Population& pop) {
    size_t n = 0;
    for (const auto& d : pop.domains())
      if (d.https_rr_since_week > 0 && d.https_rr_since_week <= pop.week())
        ++n;
    return n;
  };
  Population w10({.dns_corpus_scale = 0.01}, 10);
  Population w14({.dns_corpus_scale = 0.01}, 14);
  Population w18({.dns_corpus_scale = 0.01}, 18);
  size_t c10 = count_https(w10), c14 = count_https(w14),
         c18 = count_https(w18);
  EXPECT_LT(c10, c14);
  EXPECT_LT(c14, c18);
}

TEST(PopulationEvolution, AddressesStableAcrossWeeks) {
  // A host that exists in week 10 keeps its address in week 18 --
  // longitudinal joins depend on this.
  Population w10({.dns_corpus_scale = 0.01}, 10);
  Population w18({.dns_corpus_scale = 0.01}, 18);
  size_t checked = 0;
  for (const auto& host : w10.hosts()) {
    const auto* later = w18.host_by_address(host.address);
    if (!later) continue;
    EXPECT_EQ(later->group, host.group);
    ++checked;
  }
  // The overwhelming majority must carry over.
  EXPECT_GT(checked, w10.hosts().size() * 9 / 10);
}

TEST(InternetFacade, ZonesServeHostsAndHttpsRrs) {
  netsim::EventLoop loop;
  Internet internet({.dns_corpus_scale = 0.01}, 18, loop);
  const auto& pop = internet.population();
  // Find a domain with an HTTPS RR and check the zone data matches.
  size_t checked = 0;
  dns::Resolver resolver(internet.zones());
  for (const auto& domain : pop.domains()) {
    if (domain.https_rr_since_week == 0 || domain.v4_hosts.empty()) continue;
    auto result = resolver.resolve(domain.name, dns::RRType::kHttps);
    auto svcb = result.svcb();
    ASSERT_EQ(svcb.size(), 1u) << domain.name;
    EXPECT_FALSE(svcb[0].alpn.empty());
    ASSERT_FALSE(svcb[0].ipv4_hints.empty());
    EXPECT_EQ(svcb[0].ipv4_hints[0],
              pop.hosts()[domain.v4_hosts[0]].address);
    if (++checked >= 25) break;
  }
  EXPECT_GT(checked, 0u);
}

TEST(InternetFacade, ListCorpusSizesMatchSpecs) {
  netsim::EventLoop loop;
  Internet internet({.dns_corpus_scale = 1.0}, 18, loop);
  EXPECT_EQ(internet.list_corpus("alexa").size(), 1000u);
  EXPECT_EQ(internet.list_corpus("majestic").size(), 1000u);
  EXPECT_EQ(internet.list_corpus("umbrella").size(), 1000u);
  EXPECT_EQ(internet.list_corpus("czds").size(), 31000u);
  // com/net/org additionally absorbs every stored domain the striding
  // skipped (zone files cover all registered names).
  EXPECT_GE(internet.list_corpus("comnetorg").size(), 180000u);
  EXPECT_LE(internet.list_corpus("comnetorg").size(), 260000u);
  EXPECT_THROW(internet.list_corpus("nosuch"), std::invalid_argument);
}

TEST(PopulationEvolution, EveryWeekBuildsConsistently) {
  size_t previous_hosts = 0;
  for (int week = 5; week <= 18; ++week) {
    Population population({.dns_corpus_scale = 0.005}, week);
    // Monotone growth week over week.
    EXPECT_GE(population.hosts().size(), previous_hosts) << "week " << week;
    previous_hosts = population.hosts().size();
    // Structural invariants hold at every snapshot.
    std::set<netsim::IpAddress> addresses;
    for (const auto& host : population.hosts()) {
      EXPECT_TRUE(addresses.insert(host.address).second)
          << "duplicate address in week " << week;
      EXPECT_GE(host.tp_config, 0);
      EXPECT_LT(host.tp_config, kTpConfigCount);
      if (host.quic_enabled() && !host.stall_handshake &&
          !host.handshake_versions.empty()) {
        // A deployment that can handshake must offer at least one ALPN.
        EXPECT_FALSE(host.quic_alpn.empty()) << host.group;
      }
    }
  }
}

TEST(PopulationEvolution, VersionSetsOnlyEverGainVersions) {
  // Per group, the advertised version set at week 18 is a superset of
  // week 5's (deployments upgraded; nobody removed support mid-window).
  Population early({.dns_corpus_scale = 0.005}, 5);
  Population late({.dns_corpus_scale = 0.005}, 18);
  std::map<std::string, std::set<quic::Version>> early_sets, late_sets;
  for (const auto& host : early.hosts())
    early_sets[host.group].insert(host.advertised_versions.begin(),
                                  host.advertised_versions.end());
  for (const auto& host : late.hosts())
    late_sets[host.group].insert(host.advertised_versions.begin(),
                                 host.advertised_versions.end());
  for (const auto& [group, versions] : early_sets) {
    for (quic::Version v : versions)
      EXPECT_TRUE(late_sets[group].contains(v))
          << group << " dropped " << quic::version_name(v);
  }
}

TEST(InternetFacade, ZmapCandidatesIncludeDudsButNoDuplicates) {
  netsim::EventLoop loop;
  Internet internet({.dns_corpus_scale = 0.005}, 18, loop);
  auto candidates = internet.zmap_candidates_v4(2);
  std::set<netsim::IpAddress> unique(candidates.begin(), candidates.end());
  EXPECT_EQ(unique.size(), candidates.size());
  size_t v4_hosts = 0;
  for (const auto& host : internet.population().hosts())
    if (host.address.is_v4()) ++v4_hosts;
  EXPECT_EQ(candidates.size(), v4_hosts * 3);  // host + 2 duds each
}

TEST(InternetFacade, HostLookupMatchesPopulation) {
  netsim::EventLoop loop;
  Internet internet({.dns_corpus_scale = 0.005}, 18, loop);
  size_t checked = 0;
  for (const auto& host : internet.population().hosts()) {
    const auto* server = internet.host_for(host.address);
    ASSERT_NE(server, nullptr);
    EXPECT_EQ(server->profile().id, host.id);
    if (++checked > 200) break;
  }
}

}  // namespace
