// Robustness and determinism tests: the scanners under packet loss,
// reproducibility across identical runs, malformed-input handling at
// every network-facing parser, and event-loop edge cases.
#include <gtest/gtest.h>

#include "internet/internet.h"
#include "quic/connection.h"
#include "scanner/qscanner.h"
#include "scanner/zmap.h"
#include "telemetry/metrics.h"

namespace {

TEST(Determinism, IdenticalSeedsIdenticalSweeps) {
  auto run = [] {
    netsim::EventLoop loop;
    internet::Internet net({.dns_corpus_scale = 0.005}, 18, loop);
    scanner::ZmapQuicScanner zmap(net.network(), {});
    std::vector<std::string> out;
    for (const auto& hit : zmap.scan(net.zmap_candidates_v4()))
      out.push_back(hit.address.to_string() + "=" +
                    quic::version_set_name(hit.versions));
    return out;
  };
  EXPECT_EQ(run(), run());
}

TEST(Determinism, DifferentSeedsDifferentNoise) {
  auto hosts = [](uint64_t seed) {
    netsim::EventLoop loop;
    internet::Internet net({.seed = seed, .dns_corpus_scale = 0.005}, 18,
                           loop);
    return net.population().hosts().size();
  };
  // Population structure is seed-independent (counts are calibrated),
  // which is itself a property worth pinning.
  EXPECT_EQ(hosts(1), hosts(2));
}

TEST(Robustness, LossyLinkYieldsTimeoutsNotCrashes) {
  netsim::EventLoop loop;
  internet::Internet net({.dns_corpus_scale = 0.005}, 18, loop);
  scanner::QScanner qscanner(net.network(), {});
  // Degrade every Cloudflare host's link to 60 % datagram loss; a
  // scanner without retransmission sees a mix of successes (lucky
  // paths) and timeouts -- never a crash or misclassification into
  // version mismatch.
  size_t attempted = 0;
  std::map<scanner::QscanOutcome, int> outcomes;
  for (const auto& host : net.population().hosts()) {
    if (host.group != "cloudflare" || !host.address.is_v4()) continue;
    net.network().set_link(host.address,
                           {.latency_us = 10'000, .loss = 0.6,
                            .silent = false});
    const internet::DomainInfo* domain = nullptr;
    for (uint32_t id : host.domain_ids) {
      domain = &net.population().domains()[id];
      break;
    }
    if (!domain) continue;
    auto result = qscanner.scan_one(
        {host.address, domain->name, host.advertised_versions});
    ++outcomes[result.outcome];
    if (++attempted >= 30) break;
  }
  ASSERT_GT(attempted, 10u);
  EXPECT_GT(outcomes[scanner::QscanOutcome::kTimeout], 0);
  EXPECT_EQ(outcomes[scanner::QscanOutcome::kVersionMismatch], 0);
}

TEST(Robustness, ServerSurvivesGarbageDatagrams) {
  netsim::EventLoop loop;
  internet::Internet net({.dns_corpus_scale = 0.005}, 18, loop);
  const internet::HostProfile* target = nullptr;
  for (const auto& host : net.population().hosts()) {
    if (host.group == "cloudflare" && host.address.is_v4()) {
      target = &host;
      break;
    }
  }
  ASSERT_NE(target, nullptr);
  auto socket = net.network().open_udp(
      {*netsim::IpAddress::parse("192.0.2.99"), 9999});
  crypto::Rng rng(123);
  // Garbage of every flavor: empty-ish, short-header junk, truncated
  // long headers, random noise at Initial size.
  for (size_t size : {size_t{1}, size_t{5}, size_t{20}, size_t{100},
                      size_t{1200}, size_t{1500}}) {
    socket->send({target->address, 443}, rng.bytes(size));
  }
  loop.run();
  // The host must still complete a legitimate handshake afterwards.
  scanner::QScanner qscanner(net.network(), {});
  const internet::DomainInfo* domain = nullptr;
  for (uint32_t id : target->domain_ids) {
    domain = &net.population().domains()[id];
    break;
  }
  ASSERT_NE(domain, nullptr);
  auto result = qscanner.scan_one(
      {target->address, domain->name, target->advertised_versions});
  EXPECT_EQ(result.outcome, scanner::QscanOutcome::kSuccess);
}

TEST(Robustness, WatchdogCutsOffAttemptsPastTheDatagramBudget) {
  // A one-datagram receive budget turns every normal multi-datagram
  // handshake into a Watchdog outcome; the default budget (256) lets
  // the same host complete. Between them: the per-attempt watchdog is
  // wired into the receive path and is generous enough to never fire
  // on a compliant exchange.
  netsim::EventLoop loop;
  internet::Internet net({.dns_corpus_scale = 0.005}, 18, loop);
  const internet::HostProfile* target = nullptr;
  const internet::DomainInfo* domain = nullptr;
  for (const auto& host : net.population().hosts()) {
    if (host.group != "cloudflare" || !host.address.is_v4()) continue;
    for (uint32_t id : host.domain_ids) {
      target = &host;
      domain = &net.population().domains()[id];
      break;
    }
    if (target) break;
  }
  ASSERT_NE(target, nullptr);

  telemetry::MetricsRegistry metrics;
  scanner::QscanOptions starved;
  starved.metrics = &metrics;
  starved.watchdog_rx_datagrams = 1;
  scanner::QScanner strangled(net.network(), starved);
  auto result = strangled.scan_one(
      {target->address, domain->name, target->advertised_versions});
  EXPECT_EQ(result.outcome, scanner::QscanOutcome::kWatchdog);
  const auto* fired = metrics.find_counter("qscan.watchdog_fired");
  ASSERT_NE(fired, nullptr);
  EXPECT_EQ(fired->value(), 1u);

  // Fresh seed: the default seed would replay the strangled attempt's
  // source port and DCID, landing in that half-open server connection.
  scanner::QscanOptions defaults;
  defaults.seed = 99;
  scanner::QScanner patient(net.network(), defaults);
  auto ok = patient.scan_one(
      {target->address, domain->name, target->advertised_versions});
  EXPECT_EQ(ok.outcome, scanner::QscanOutcome::kSuccess);
}

TEST(Robustness, ClientIgnoresForgedVersionNegotiation) {
  // A VN packet that does not echo the client's connection IDs is an
  // off-path forgery; the client must not downgrade. Our client keys VN
  // handling on the datagram shape only, so verify it at least never
  // crashes and ends in a defined state.
  quic::ClientConfig config;
  config.version = quic::kVersion1;
  config.compatible_versions = {quic::kVersion1, quic::kDraft29};
  std::vector<std::vector<uint8_t>> sent;
  quic::ClientConnection client(
      config, crypto::Rng(5),
      [&](std::vector<uint8_t> d) { sent.push_back(std::move(d)); },
      nullptr);
  client.start();
  ASSERT_EQ(sent.size(), 1u);
  // Forged VN listing only gQUIC: no compatible alternative -> the
  // connection fails closed as a version mismatch, never UB.
  quic::VersionNegotiationPacket vn;
  vn.dcid = {1, 2, 3};
  vn.scid = {4, 5, 6};
  vn.supported_versions = {quic::kQ050};
  client.on_datagram(quic::encode_version_negotiation(vn, 0x11));
  EXPECT_EQ(client.report().result, quic::ConnectResult::kVersionMismatch);
}

TEST(Robustness, TruncatedServerFlightTimesOutCleanly) {
  netsim::EventLoop loop;
  internet::Internet net({.dns_corpus_scale = 0.005}, 18, loop);
  // Deliver only the first 40 bytes of every server datagram by
  // spoofing through a raw socket relay.
  const internet::HostProfile* target = nullptr;
  for (const auto& host : net.population().hosts())
    if (host.group == "google" && host.address.is_v4()) {
      target = &host;
      break;
    }
  ASSERT_NE(target, nullptr);

  auto relay_addr = *netsim::IpAddress::parse("192.0.2.50");
  auto scanner_socket = net.network().open_udp({relay_addr, 7000});
  quic::ClientConfig config;
  config.version = quic::kDraft29;
  config.compatible_versions = {quic::kDraft29};
  quic::ClientConnection client(
      config, crypto::Rng(6),
      [&](std::vector<uint8_t> d) {
        scanner_socket->send({target->address, 443}, std::move(d));
      },
      nullptr);
  scanner_socket->set_receiver(
      [&](const netsim::Endpoint&, std::span<const uint8_t> data) {
        auto truncated = data.first(std::min<size_t>(40, data.size()));
        client.on_datagram(truncated);
      });
  client.start();
  loop.run_until(loop.now_us() + 3'000'000);
  EXPECT_EQ(client.report().result, quic::ConnectResult::kPending)
      << "truncated flights must look like packet loss, not errors";
}

TEST(Robustness, PtoRetransmissionRecoversLossyHandshakes) {
  netsim::EventLoop loop;
  internet::Internet net({.dns_corpus_scale = 0.005}, 18, loop);
  // 40 % loss each way; a single-shot scanner loses most handshakes,
  // the PTO-retransmitting one recovers a meaningfully larger share.
  auto scan_with = [&](int retransmits) {
    scanner::QscanOptions options;
    options.max_retransmits = retransmits;
    options.seed = 0x1717;
    scanner::QScanner qscanner(net.network(), options);
    int ok = 0, total = 0;
    for (const auto& host : net.population().hosts()) {
      if (host.group != "google" || !host.address.is_v4()) continue;
      net.network().set_link(host.address,
                             {.latency_us = 10'000, .loss = 0.4,
                              .silent = false});
      auto result = qscanner.scan_one(
          {host.address, std::nullopt, host.advertised_versions});
      ++total;
      if (result.outcome == scanner::QscanOutcome::kSuccess) ++ok;
      if (total >= 60) break;
    }
    return std::pair{ok, total};
  };
  auto [ok_without, n1] = scan_with(0);
  auto [ok_with, n2] = scan_with(2);
  ASSERT_EQ(n1, n2);
  EXPECT_GT(ok_with, ok_without);
}

}  // namespace
