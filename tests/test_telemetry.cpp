// Telemetry subsystem tests: histogram bucket/percentile math, the
// JSON-Lines trace format (every emitted line must parse back cleanly),
// virtual-time determinism (identical seeds produce byte-identical
// traces and metrics), and the QScanner integration contract: each
// Table 3 outcome class ends its trace with the matching terminal
// event.
#include <gtest/gtest.h>

#include <cctype>
#include <map>
#include <sstream>
#include <stdexcept>
#include <string>

#include "internet/internet.h"
#include "scanner/qscanner.h"
#include "telemetry/metrics.h"
#include "telemetry/trace.h"

namespace {

using telemetry::EventType;
using telemetry::Histogram;
using telemetry::MemorySink;
using telemetry::MetricsRegistry;
using telemetry::TraceEvent;
using telemetry::Tracer;
using telemetry::Vantage;

// --- Histogram math --------------------------------------------------

TEST(Histogram, BucketAssignmentUsesInclusiveUpperBounds) {
  Histogram h({10, 100, 1000});
  h.observe(0);
  h.observe(10);    // inclusive: still the first bucket
  h.observe(11);
  h.observe(100);
  h.observe(1000);
  h.observe(1001);  // overflow
  ASSERT_EQ(h.bucket_counts().size(), 4u);
  EXPECT_EQ(h.bucket_counts()[0], 2u);
  EXPECT_EQ(h.bucket_counts()[1], 2u);
  EXPECT_EQ(h.bucket_counts()[2], 1u);
  EXPECT_EQ(h.bucket_counts()[3], 1u);
  EXPECT_EQ(h.count(), 6u);
  EXPECT_EQ(h.sum(), 0u + 10 + 11 + 100 + 1000 + 1001);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 1001u);
}

TEST(Histogram, BoundsAreSortedAndDeduplicated) {
  Histogram h({100, 10, 100, 1000});
  ASSERT_EQ(h.bounds().size(), 3u);
  EXPECT_EQ(h.bounds()[0], 10u);
  EXPECT_EQ(h.bounds()[1], 100u);
  EXPECT_EQ(h.bounds()[2], 1000u);
}

TEST(Histogram, PercentileNearestRank) {
  Histogram h({10, 20, 30, 40});
  // 10 samples: one per bucket value, repeated.
  for (int i = 0; i < 5; ++i) h.observe(5);    // bucket <=10
  for (int i = 0; i < 3; ++i) h.observe(15);   // bucket <=20
  for (int i = 0; i < 2; ++i) h.observe(25);   // bucket <=30
  EXPECT_EQ(h.percentile(0.50), 10u);  // rank 5 of 10 -> first bucket
  EXPECT_EQ(h.percentile(0.51), 20u);  // rank 6 -> second bucket
  EXPECT_EQ(h.percentile(0.80), 20u);  // rank 8
  EXPECT_EQ(h.percentile(0.90), 30u);  // rank 9
  EXPECT_EQ(h.percentile(1.00), 30u);
}

TEST(Histogram, PercentileOverflowReportsMaxObserved) {
  Histogram h({10});
  h.observe(5);
  h.observe(99);
  h.observe(12345);
  EXPECT_EQ(h.percentile(1.0), 12345u);
  EXPECT_EQ(h.percentile(0.25), 10u);
}

TEST(Histogram, EmptyHistogramIsZero) {
  Histogram h({10, 20});
  EXPECT_EQ(h.percentile(0.5), 0u);
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 0u);
}

// --- Registry --------------------------------------------------------

TEST(Metrics, RegistryLookupIsStableAndNamed) {
  MetricsRegistry registry;
  auto& c = registry.counter("a.count");
  c.add(2);
  registry.counter("a.count").add(3);
  EXPECT_EQ(c.value(), 5u);
  ASSERT_NE(registry.find_counter("a.count"), nullptr);
  EXPECT_EQ(registry.find_counter("a.count")->value(), 5u);
  EXPECT_EQ(registry.find_counter("missing"), nullptr);
  // First registration fixes histogram bounds.
  auto& h1 = registry.histogram("h", {1, 2});
  auto& h2 = registry.histogram("h", {7, 8, 9});
  EXPECT_EQ(&h1, &h2);
  EXPECT_EQ(h2.bounds().size(), 2u);
}

// --- Shard merge (the campaign engine's fold primitive) --------------

TEST(HistogramMerge, EmptySideIsTheIdentity) {
  Histogram populated({10, 100});
  populated.observe(5);
  populated.observe(50);
  populated.observe(7000);  // overflow bucket

  // Merging an empty histogram in must not disturb anything -- in
  // particular min() must not collapse to the empty side's 0 (the
  // internal identity is UINT64_MAX, surfaced as 0 only by min()).
  Histogram merged = populated;
  merged.merge_from(Histogram({10, 100}));
  EXPECT_EQ(merged.bucket_counts(), populated.bucket_counts());
  EXPECT_EQ(merged.count(), 3u);
  EXPECT_EQ(merged.sum(), 5u + 50 + 7000);
  EXPECT_EQ(merged.min(), 5u);
  EXPECT_EQ(merged.max(), 7000u);

  // And the mirror image: empty.merge_from(populated) == populated.
  Histogram onto({10, 100});
  onto.merge_from(populated);
  EXPECT_EQ(onto.bucket_counts(), populated.bucket_counts());
  EXPECT_EQ(onto.min(), 5u);
  EXPECT_EQ(onto.max(), 7000u);

  // Two empties stay empty (min() keeps its empty-registry contract).
  Histogram both({10, 100});
  both.merge_from(Histogram({10, 100}));
  EXPECT_EQ(both.count(), 0u);
  EXPECT_EQ(both.min(), 0u);
  EXPECT_EQ(both.max(), 0u);
}

TEST(HistogramMerge, OverflowBucketsAccumulate) {
  Histogram a({10});
  a.observe(11);
  a.observe(500);
  Histogram b({10});
  b.observe(9999);
  b.observe(3);

  a.merge_from(b);
  ASSERT_EQ(a.bucket_counts().size(), 2u);
  EXPECT_EQ(a.bucket_counts()[0], 1u);  // the 3
  EXPECT_EQ(a.bucket_counts()[1], 3u);  // 11, 500, 9999 overflow
  EXPECT_EQ(a.max(), 9999u);
  EXPECT_EQ(a.min(), 3u);
  // Overflow percentile reports the true maximum across both sides.
  EXPECT_EQ(a.percentile(1.0), 9999u);
}

TEST(HistogramMerge, MismatchedBoundsThrow) {
  Histogram a({10, 100});
  Histogram b({10, 1000});
  EXPECT_THROW(a.merge_from(b), std::logic_error);
}

TEST(MetricsMerge, RegistryMergeCreatesMissingAndAccumulates) {
  MetricsRegistry left;
  left.counter("shared").add(2);
  left.histogram("h", {10}).observe(5);

  MetricsRegistry right;
  right.counter("shared").add(3);
  right.counter("right.only").add(7);
  right.gauge("depth").set(4);
  right.histogram("h", {10}).observe(20);       // overflow on merge
  right.histogram("right.h", {1, 2}).observe(1);

  left.merge_from(right);
  EXPECT_EQ(left.find_counter("shared")->value(), 5u);
  EXPECT_EQ(left.find_counter("right.only")->value(), 7u);
  ASSERT_NE(left.find_histogram("h"), nullptr);
  EXPECT_EQ(left.find_histogram("h")->count(), 2u);
  EXPECT_EQ(left.find_histogram("h")->bucket_counts()[1], 1u);
  ASSERT_NE(left.find_histogram("right.h"), nullptr);
  EXPECT_EQ(left.find_histogram("right.h")->count(), 1u);
  EXPECT_EQ(left.gauges().at("depth").value(), 4);

  // Merging an empty registry is the identity on the JSON dump.
  std::ostringstream before;
  left.write_json(before);
  left.merge_from(MetricsRegistry());
  std::ostringstream after;
  left.write_json(after);
  EXPECT_EQ(before.str(), after.str());
}

// --- Hot-path counters (PR 3) ----------------------------------------
//
// QScanner folds each attempt's quic::HotpathStats into the
// `hotpath.*` counters, making buffer-pool effectiveness visible in
// the --metrics JSON: alloc_bytes counts scratch-capacity growth (flat
// in steady state = allocation-free packet path) and aead_ctx_reuse
// counts packets sealed/opened by an already-built AEAD context.

namespace {
// Scans up to `max_targets` hosts (optionally only one deployment
// group -- "google" guarantees completed handshakes) into `metrics`.
uint64_t run_hotpath_scan(MetricsRegistry& metrics, int max_targets,
                          const std::string& group = "") {
  netsim::EventLoop loop;
  internet::Internet net({.dns_corpus_scale = 0.002}, 18, loop);
  loop.set_metrics(&metrics);
  net.network().set_metrics(&metrics);
  scanner::QscanOptions options;
  options.metrics = &metrics;
  scanner::QScanner qscanner(net.network(), options);
  int scanned = 0;
  for (const auto& host : net.population().hosts()) {
    if (!host.address.is_v4()) continue;
    if (!group.empty() && host.group != group) continue;
    scanner::QscanTarget target{host.address, std::nullopt,
                                host.advertised_versions};
    if (!qscanner.compatible(target)) continue;
    qscanner.scan_one(target);
    if (++scanned >= max_targets) break;
  }
  return qscanner.attempts();
}
}  // namespace

TEST(HotpathCounters, ScanPopulatesAllocAndAeadReuseCounters) {
  MetricsRegistry metrics;
  // The "google" group always completes its handshake, so AEAD reuse
  // (Initial ACK through the already-built Initial context, follow-up
  // 1-RTT packets through the application context) must be visible.
  uint64_t attempts = run_hotpath_scan(metrics, 10, "google");
  ASSERT_GT(attempts, 0u);
  ASSERT_GT(metrics.find_counter("qscan.outcome.Success")->value(), 0u);
  const auto* alloc = metrics.find_counter("hotpath.alloc_bytes");
  const auto* reuse = metrics.find_counter("hotpath.aead_ctx_reuse");
  ASSERT_NE(alloc, nullptr);
  ASSERT_NE(reuse, nullptr);
  // Scratch buffers grow from empty on every attempt's first packets,
  // so some capacity growth is always recorded; any completed
  // handshake protects several packets per encryption level, so AEAD
  // contexts are demonstrably reused rather than rebuilt.
  EXPECT_GT(alloc->value(), 0u);
  EXPECT_GT(reuse->value(), 0u);
  // And the counters surface in the --metrics JSON dump.
  std::ostringstream json;
  metrics.write_json(json);
  EXPECT_NE(json.str().find("\"hotpath.alloc_bytes\""), std::string::npos);
  EXPECT_NE(json.str().find("\"hotpath.aead_ctx_reuse\""), std::string::npos);
}

TEST(HotpathCounters, MergeFromSumsAcrossShardRegistries) {
  // Two shard-style registries fed by independent scans must fold into
  // exactly the sum of their hotpath counters (the engine's shard-merge
  // path), and merging must not disturb unrelated metrics.
  MetricsRegistry a, b;
  run_hotpath_scan(a, 8);
  run_hotpath_scan(b, 16);
  const uint64_t alloc_a = a.find_counter("hotpath.alloc_bytes")->value();
  const uint64_t alloc_b = b.find_counter("hotpath.alloc_bytes")->value();
  const uint64_t reuse_a = a.find_counter("hotpath.aead_ctx_reuse")->value();
  const uint64_t reuse_b = b.find_counter("hotpath.aead_ctx_reuse")->value();
  ASSERT_GT(alloc_a, 0u);
  ASSERT_GT(alloc_b, 0u);

  MetricsRegistry merged;
  merged.merge_from(a);
  merged.merge_from(b);
  EXPECT_EQ(merged.find_counter("hotpath.alloc_bytes")->value(),
            alloc_a + alloc_b);
  EXPECT_EQ(merged.find_counter("hotpath.aead_ctx_reuse")->value(),
            reuse_a + reuse_b);

  // Fold order must not matter (shard-merge algebra).
  MetricsRegistry reversed;
  reversed.merge_from(b);
  reversed.merge_from(a);
  std::ostringstream lhs, rhs;
  merged.write_json(lhs);
  reversed.write_json(rhs);
  EXPECT_EQ(lhs.str(), rhs.str());
}

// --- Minimal JSON parser (validation only) ---------------------------
//
// Just enough RFC 8259 to prove every line the sinks emit is
// well-formed: objects, arrays, strings with escapes, integers,
// booleans. Returns false on any syntax error or trailing garbage.

struct JsonCursor {
  const std::string& text;
  size_t pos = 0;

  bool at_end() { return pos >= text.size(); }
  char peek() { return text[pos]; }
  bool eat(char c) {
    if (at_end() || text[pos] != c) return false;
    ++pos;
    return true;
  }
  void skip_ws() {
    while (!at_end() && std::isspace(static_cast<unsigned char>(text[pos])))
      ++pos;
  }
};

bool parse_json_value(JsonCursor& in);

bool parse_json_string(JsonCursor& in) {
  if (!in.eat('"')) return false;
  while (!in.at_end()) {
    char c = in.text[in.pos++];
    if (c == '"') return true;
    if (static_cast<unsigned char>(c) < 0x20) return false;  // raw control
    if (c == '\\') {
      if (in.at_end()) return false;
      char esc = in.text[in.pos++];
      if (esc == 'u') {
        for (int i = 0; i < 4; ++i)
          if (in.at_end() ||
              !std::isxdigit(static_cast<unsigned char>(in.text[in.pos++])))
            return false;
      } else if (std::string("\"\\/bfnrt").find(esc) == std::string::npos) {
        return false;
      }
    }
  }
  return false;
}

bool parse_json_number(JsonCursor& in) {
  size_t start = in.pos;
  if (in.eat('-')) {}
  while (!in.at_end() && std::isdigit(static_cast<unsigned char>(in.peek())))
    ++in.pos;
  return in.pos > start;
}

bool parse_json_value(JsonCursor& in) {
  in.skip_ws();
  if (in.at_end()) return false;
  char c = in.peek();
  if (c == '{') {
    ++in.pos;
    in.skip_ws();
    if (in.eat('}')) return true;
    while (true) {
      in.skip_ws();
      if (!parse_json_string(in)) return false;
      in.skip_ws();
      if (!in.eat(':')) return false;
      if (!parse_json_value(in)) return false;
      in.skip_ws();
      if (in.eat('}')) return true;
      if (!in.eat(',')) return false;
    }
  }
  if (c == '[') {
    ++in.pos;
    in.skip_ws();
    if (in.eat(']')) return true;
    while (true) {
      if (!parse_json_value(in)) return false;
      in.skip_ws();
      if (in.eat(']')) return true;
      if (!in.eat(',')) return false;
    }
  }
  if (c == '"') return parse_json_string(in);
  if (in.text.compare(in.pos, 4, "true") == 0) { in.pos += 4; return true; }
  if (in.text.compare(in.pos, 5, "false") == 0) { in.pos += 5; return true; }
  if (in.text.compare(in.pos, 4, "null") == 0) { in.pos += 4; return true; }
  return parse_json_number(in);
}

bool is_valid_json(const std::string& text) {
  JsonCursor in{text};
  if (!parse_json_value(in)) return false;
  in.skip_ws();
  return in.at_end();
}

struct FixedClock : telemetry::Clock {
  uint64_t t = 0;
  uint64_t now_us() const override { return t; }
};

TEST(TraceFormat, EveryEmittedLineParsesAsJson) {
  std::ostringstream out;
  telemetry::JsonLinesSink sink(out, "format \"smoke\" test\n\\");
  FixedClock clock;
  Tracer tracer(&sink, &clock, Vantage::kClient);
  clock.t = 42;
  tracer.emit(EventType::kPacketSent,
              {{"packet_type", "initial"},
               {"size", 1200},
               {"retransmission", false}});
  tracer.emit(EventType::kConnectionClosed,
              {{"reason", "tls: \"handshake\" failure,\nline2\x01"},
               {"error_code", 0x128}});
  tracer.emit(EventType::kTimeout);

  std::istringstream lines(out.str());
  std::string line;
  int count = 0;
  while (std::getline(lines, line)) {
    EXPECT_TRUE(is_valid_json(line)) << "line " << count << ": " << line;
    ++count;
  }
  EXPECT_EQ(count, 4);  // header + 3 events
}

TEST(TraceFormat, MetricsJsonParsesCleanly) {
  MetricsRegistry registry;
  registry.counter("scan \"odd\" name").add(7);
  registry.gauge("g").set(9);
  auto& h = registry.histogram("rtt", {10, 20});
  h.observe(5);
  h.observe(500);
  std::ostringstream out;
  registry.write_json(out);
  EXPECT_TRUE(is_valid_json(out.str())) << out.str();
}

TEST(TraceFormat, EventFieldsRoundTripThroughMemorySink) {
  MemorySink sink;
  FixedClock clock;
  clock.t = 7;
  Tracer tracer(&sink, &clock, Vantage::kServer);
  tracer.emit(EventType::kRetry, {{"token_size", 16}});
  ASSERT_EQ(sink.events().size(), 1u);
  const auto& event = sink.events()[0];
  EXPECT_EQ(event.time_us, 7u);
  EXPECT_EQ(event.type, EventType::kRetry);
  EXPECT_EQ(event.vantage, Vantage::kServer);
  ASSERT_NE(event.find("token_size"), nullptr);
  EXPECT_EQ(event.find("token_size")->num, 16u);
  EXPECT_EQ(event.find("absent"), nullptr);
}

// --- Determinism -----------------------------------------------------

// Runs a small --all-style scan against a fresh internet, returning
// (concatenated traces, metrics JSON). Everything inside runs on
// virtual time, so two invocations must match byte for byte even
// though the process-wide attempt counter differs between them.
std::pair<std::string, std::string> run_traced_scan(uint64_t seed) {
  netsim::EventLoop loop;
  internet::Internet net({.dns_corpus_scale = 0.002}, 18, loop);

  MetricsRegistry metrics;
  loop.set_metrics(&metrics);
  net.network().set_metrics(&metrics);

  auto traces = std::make_shared<std::map<std::string, std::string>>();
  scanner::QscanOptions options;
  options.seed = seed;
  options.metrics = &metrics;
  options.trace_factory =
      [traces](const std::string& label) -> std::unique_ptr<telemetry::TraceSink> {
    struct OwningSink : telemetry::TraceSink {
      std::unique_ptr<std::ostringstream> stream;
      std::shared_ptr<std::map<std::string, std::string>> store;
      std::string label;
      std::unique_ptr<telemetry::JsonLinesSink> inner;
      ~OwningSink() override { (*store)[label] = stream->str(); }
      void on_event(const TraceEvent& event) override {
        inner->on_event(event);
      }
    };
    auto sink = std::make_unique<OwningSink>();
    sink->stream = std::make_unique<std::ostringstream>();
    sink->store = traces;
    sink->label = label;
    sink->inner =
        std::make_unique<telemetry::JsonLinesSink>(*sink->stream, label);
    return sink;
  };
  scanner::QScanner qscanner(net.network(), options);

  int scanned = 0;
  for (const auto& host : net.population().hosts()) {
    if (!host.address.is_v4()) continue;
    scanner::QscanTarget target{host.address, std::nullopt,
                                host.advertised_versions};
    if (!qscanner.compatible(target)) continue;
    qscanner.scan_one(target);
    if (++scanned >= 30) break;
  }

  std::string all_traces;
  for (const auto& [label, text] : *traces)
    all_traces += "=== " + label + "\n" + text;
  std::ostringstream metrics_json;
  metrics.write_json(metrics_json);
  return {all_traces, metrics_json.str()};
}

TEST(Determinism, IdenticalSeedsProduceByteIdenticalTracesAndMetrics) {
  auto first = run_traced_scan(0x5ca9);
  auto second = run_traced_scan(0x5ca9);
  EXPECT_FALSE(first.first.empty());
  EXPECT_EQ(first.first, second.first);
  EXPECT_EQ(first.second, second.second);
}

TEST(Determinism, DifferentSeedsStillClassifyIdentically) {
  // Outcome classification must not depend on the rng seed; only
  // connection entropy does.
  auto first = run_traced_scan(1);
  auto second = run_traced_scan(2);
  EXPECT_EQ(first.second, second.second);  // metrics: same outcome counts
}

// --- QScanner integration: Table 3 outcomes vs terminal events -------

struct TelemetryWorld {
  netsim::EventLoop loop;
  internet::Internet net{{.dns_corpus_scale = 0.01}, 18, loop};
};

TelemetryWorld& telemetry_world() {
  static TelemetryWorld w;
  return w;
}

TEST(QscanTrace, OutcomeClassesEmitMatchingTerminalEvents) {
  auto& w = telemetry_world();

  // One shared memory sink, swapped per attempt via the factory.
  struct SharedMemory : telemetry::TraceSink {
    std::vector<TraceEvent> events;
    void on_event(const TraceEvent& event) override {
      events.push_back(event);
    }
  };
  auto current = std::make_shared<SharedMemory>();

  scanner::QscanOptions options;
  options.metrics = nullptr;
  options.trace_factory =
      [current](const std::string&) -> std::unique_ptr<telemetry::TraceSink> {
    struct Proxy : telemetry::TraceSink {
      std::shared_ptr<SharedMemory> target;
      void on_event(const TraceEvent& event) override {
        target->on_event(event);
      }
    };
    auto proxy = std::make_unique<Proxy>();
    proxy->target = current;
    return proxy;
  };
  scanner::QScanner scanner(w.net.network(), options);

  std::map<std::string, scanner::QscanOutcome> expectations{
      {"cloudflare-idle", scanner::QscanOutcome::kCryptoError0x128},
      {"google-mismatch", scanner::QscanOutcome::kVersionMismatch},
      {"google-stall", scanner::QscanOutcome::kTimeout},
      {"akamai", scanner::QscanOutcome::kTimeout},
      {"google", scanner::QscanOutcome::kSuccess},
      {"facebook-pop", scanner::QscanOutcome::kSuccess},
      {"broken-tail", scanner::QscanOutcome::kOther},
  };

  std::map<std::string, int> tested;
  for (const auto& host : w.net.population().hosts()) {
    auto it = expectations.find(host.group);
    if (it == expectations.end() || !host.address.is_v4()) continue;
    if (tested[host.group] >= 2) continue;
    scanner::QscanTarget target{host.address, std::nullopt,
                                host.advertised_versions};
    if (!scanner.compatible(target)) continue;

    current->events.clear();
    auto result = scanner.scan_one(target);
    ASSERT_EQ(result.outcome, it->second) << host.group;
    ASSERT_FALSE(current->events.empty()) << host.group;
    const auto& last = current->events.back();

    switch (result.outcome) {
      case scanner::QscanOutcome::kSuccess: {
        ASSERT_EQ(last.type, EventType::kConnectionClosed) << host.group;
        ASSERT_NE(last.find("result"), nullptr);
        EXPECT_EQ(last.find("result")->str, "success") << host.group;
        break;
      }
      case scanner::QscanOutcome::kTimeout: {
        EXPECT_EQ(last.type, EventType::kTimeout) << host.group;
        ASSERT_NE(last.find("elapsed_us"), nullptr);
        EXPECT_GT(last.find("elapsed_us")->num, 0u);
        break;
      }
      case scanner::QscanOutcome::kCryptoError0x128: {
        ASSERT_EQ(last.type, EventType::kConnectionClosed) << host.group;
        ASSERT_NE(last.find("error_code"), nullptr);
        EXPECT_EQ(last.find("error_code")->num, 0x128u) << host.group;
        break;
      }
      case scanner::QscanOutcome::kVersionMismatch: {
        bool saw_vn = false;
        for (const auto& event : current->events)
          if (event.type == EventType::kVersionNegotiation) saw_vn = true;
        EXPECT_TRUE(saw_vn) << host.group;
        ASSERT_EQ(last.type, EventType::kConnectionClosed) << host.group;
        ASSERT_NE(last.find("result"), nullptr);
        EXPECT_EQ(last.find("result")->str, "version-mismatch")
            << host.group;
        break;
      }
      case scanner::QscanOutcome::kOther: {
        ASSERT_EQ(last.type, EventType::kConnectionClosed) << host.group;
        ASSERT_NE(last.find("result"), nullptr);
        EXPECT_NE(last.find("result")->str, "success") << host.group;
        break;
      }
    }
    ++tested[host.group];
  }
  for (const auto& [group, expected] : expectations)
    EXPECT_GE(tested[group], 1) << group << " never exercised";
}

// Success traces must tell the full handshake story in order.
TEST(QscanTrace, SuccessTraceContainsHandshakeLadder) {
  auto& w = telemetry_world();
  auto sink = std::make_shared<MemorySink>();
  scanner::QscanOptions options;
  options.trace_factory =
      [sink](const std::string&) -> std::unique_ptr<telemetry::TraceSink> {
    struct Proxy : telemetry::TraceSink {
      std::shared_ptr<MemorySink> target;
      void on_event(const TraceEvent& event) override {
        target->on_event(event);
      }
    };
    auto proxy = std::make_unique<Proxy>();
    proxy->target = sink;
    return proxy;
  };
  scanner::QScanner scanner(w.net.network(), options);

  const internet::HostProfile* target_host = nullptr;
  for (const auto& host : w.net.population().hosts())
    if (host.group == "google" && host.address.is_v4()) {
      target_host = &host;
      break;
    }
  ASSERT_NE(target_host, nullptr);
  auto result = scanner.scan_one({target_host->address, std::nullopt,
                                  target_host->advertised_versions});
  ASSERT_EQ(result.outcome, scanner::QscanOutcome::kSuccess);

  std::vector<EventType> want{
      EventType::kTlsMessage,          // client_hello
      EventType::kKeyUpdate,           // initial keys
      EventType::kPacketSent,          // initial
      EventType::kPacketReceived,      // server flight
      EventType::kTransportParamsSet,  // remote TPs
      EventType::kConnectionClosed,
  };
  size_t next = 0;
  for (const auto& event : sink->events())
    if (next < want.size() && event.type == want[next]) ++next;
  EXPECT_EQ(next, want.size()) << "handshake ladder incomplete";
  // Times are monotone virtual microseconds.
  uint64_t last_time = 0;
  for (const auto& event : sink->events()) {
    EXPECT_GE(event.time_us, last_time);
    last_time = event.time_us;
  }
}

}  // namespace
