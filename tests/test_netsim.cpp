// Network simulator tests: address parsing/formatting, prefixes,
// virtual-time event loop, datagram delivery, link failure modes.
#include <gtest/gtest.h>

#include <array>
#include <functional>
#include <map>
#include <memory>
#include <random>
#include <utility>
#include <vector>

#include "netsim/address.h"
#include "netsim/event_loop.h"
#include "netsim/impairment.h"
#include "netsim/network.h"
#include "telemetry/metrics.h"

using netsim::Endpoint;
using netsim::IpAddress;
using netsim::Prefix;

namespace {

TEST(IpAddress, V4ParseFormat) {
  auto a = IpAddress::parse("192.168.1.200");
  ASSERT_TRUE(a.has_value());
  EXPECT_TRUE(a->is_v4());
  EXPECT_EQ(a->v4_value(), 0xc0a801c8u);
  EXPECT_EQ(a->to_string(), "192.168.1.200");
}

TEST(IpAddress, V4RejectsMalformed) {
  EXPECT_FALSE(IpAddress::parse("1.2.3").has_value());
  EXPECT_FALSE(IpAddress::parse("1.2.3.4.5").has_value());
  EXPECT_FALSE(IpAddress::parse("1.2.3.256").has_value());
  EXPECT_FALSE(IpAddress::parse("a.b.c.d").has_value());
  EXPECT_FALSE(IpAddress::parse("").has_value());
}

TEST(IpAddress, V6ParseFormat) {
  auto a = IpAddress::parse("2001:db8::1");
  ASSERT_TRUE(a.has_value());
  EXPECT_TRUE(a->is_v6());
  EXPECT_EQ(a->v6_hi(), 0x20010db800000000ull);
  EXPECT_EQ(a->v6_lo(), 1ull);
  EXPECT_EQ(a->to_string(), "2001:db8::1");
}

TEST(IpAddress, V6ZeroCompression) {
  EXPECT_EQ(IpAddress::v6(0, 0).to_string(), "::");
  EXPECT_EQ(IpAddress::v6(0, 1).to_string(), "::1");
  EXPECT_EQ(IpAddress::parse("::")->v6_lo(), 0u);
  EXPECT_EQ(IpAddress::parse("::1")->v6_lo(), 1u);
  // Longest zero run is compressed.
  auto a = IpAddress::parse("2606:4700:0:0:0:0:0:1111");
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(a->to_string(), "2606:4700::1111");
}

TEST(IpAddress, V6RejectsMalformed) {
  EXPECT_FALSE(IpAddress::parse("2001:db8::1::2").has_value());
  EXPECT_FALSE(IpAddress::parse("1:2:3:4:5:6:7").has_value());
  EXPECT_FALSE(IpAddress::parse("1:2:3:4:5:6:7:8:9").has_value());
  EXPECT_FALSE(IpAddress::parse("20011:db8::1").has_value());
}

TEST(IpAddress, RoundTripThroughText) {
  for (const char* text :
       {"0.0.0.0", "255.255.255.255", "104.16.0.1", "2606:4700::", "::ffff",
        "fe80::1:2:3:4", "2001:db8:1:2:3:4:5:6"}) {
    auto a = IpAddress::parse(text);
    ASSERT_TRUE(a.has_value()) << text;
    auto b = IpAddress::parse(a->to_string());
    ASSERT_TRUE(b.has_value()) << text;
    EXPECT_EQ(*a, *b) << text;
  }
}

TEST(Prefix, V4Contains) {
  auto p = Prefix::parse("104.16.0.0/12");
  ASSERT_TRUE(p.has_value());
  EXPECT_TRUE(p->contains(*IpAddress::parse("104.16.0.1")));
  EXPECT_TRUE(p->contains(*IpAddress::parse("104.31.255.255")));
  EXPECT_FALSE(p->contains(*IpAddress::parse("104.32.0.0")));
  EXPECT_FALSE(p->contains(*IpAddress::parse("103.255.255.255")));
  EXPECT_FALSE(p->contains(*IpAddress::parse("2001:db8::1")));
}

TEST(Prefix, V6Contains) {
  auto p = Prefix::parse("2606:4700::/32");
  ASSERT_TRUE(p.has_value());
  EXPECT_TRUE(p->contains(*IpAddress::parse("2606:4700::1")));
  EXPECT_TRUE(p->contains(*IpAddress::parse("2606:4700:ffff::")));
  EXPECT_FALSE(p->contains(*IpAddress::parse("2606:4701::")));
}

TEST(Prefix, HostEnumeration) {
  auto p = Prefix::parse("10.0.0.0/24");
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->host_count(), 256u);
  EXPECT_EQ(p->host_at(0).to_string(), "10.0.0.0");
  EXPECT_EQ(p->host_at(255).to_string(), "10.0.0.255");
  EXPECT_THROW(p->host_at(256), std::out_of_range);
}

TEST(Prefix, ZeroLengthContainsEverything) {
  auto p = Prefix::parse("0.0.0.0/0");
  ASSERT_TRUE(p.has_value());
  EXPECT_TRUE(p->contains(*IpAddress::parse("1.2.3.4")));
  EXPECT_TRUE(p->contains(*IpAddress::parse("255.0.0.1")));
}

TEST(EventLoop, RunsInTimeOrder) {
  netsim::EventLoop loop;
  std::vector<int> order;
  loop.schedule_in(300, [&] { order.push_back(3); });
  loop.schedule_in(100, [&] { order.push_back(1); });
  loop.schedule_in(200, [&] { order.push_back(2); });
  loop.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(loop.now_us(), 300u);
}

TEST(EventLoop, SameTimeFiresInScheduleOrder) {
  netsim::EventLoop loop;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i)
    loop.schedule_in(100, [&order, i] { order.push_back(i); });
  loop.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventLoop, CancelPreventsFiring) {
  netsim::EventLoop loop;
  bool fired = false;
  auto id = loop.schedule_in(100, [&] { fired = true; });
  loop.cancel(id);
  loop.run();
  EXPECT_FALSE(fired);
}

TEST(EventLoop, NestedScheduling) {
  netsim::EventLoop loop;
  uint64_t fired_at = 0;
  loop.schedule_in(100, [&] {
    loop.schedule_in(50, [&] { fired_at = loop.now_us(); });
  });
  loop.run();
  EXPECT_EQ(fired_at, 150u);
}

TEST(EventLoop, RunUntilAdvancesClockWhenIdle) {
  netsim::EventLoop loop;
  loop.run_until(5000);
  EXPECT_EQ(loop.now_us(), 5000u);
}

class EchoService : public netsim::UdpService {
 public:
  void on_datagram(const Endpoint& from, std::span<const uint8_t> payload,
                   const Transmit& transmit) override {
    std::vector<uint8_t> reply(payload.begin(), payload.end());
    std::reverse(reply.begin(), reply.end());
    transmit(from, std::move(reply));
  }
};

TEST(Network, UdpRoundTrip) {
  netsim::EventLoop loop;
  netsim::Network net(loop);
  EchoService echo;
  Endpoint server{*IpAddress::parse("10.0.0.1"), 443};
  net.add_udp_service(server, &echo);

  auto sock = net.open_udp({*IpAddress::parse("192.0.2.1"), 5000});
  std::vector<uint8_t> got;
  sock->set_receiver([&](const Endpoint&, std::span<const uint8_t> data) {
    got.assign(data.begin(), data.end());
  });
  sock->send(server, {1, 2, 3});
  loop.run();
  EXPECT_EQ(got, (std::vector<uint8_t>{3, 2, 1}));
  EXPECT_EQ(loop.now_us(), 20'000u);  // two one-way default latencies
  EXPECT_EQ(net.datagrams_sent(), 2u);
}

TEST(Network, SilentLinkSwallowsDatagrams) {
  netsim::EventLoop loop;
  netsim::Network net(loop);
  EchoService echo;
  Endpoint server{*IpAddress::parse("10.0.0.1"), 443};
  net.add_udp_service(server, &echo);
  net.set_link(server.addr, {.latency_us = 10, .loss = 0, .silent = true});

  auto sock = net.open_udp({*IpAddress::parse("192.0.2.1"), 5000});
  bool received = false;
  sock->set_receiver(
      [&](const Endpoint&, std::span<const uint8_t>) { received = true; });
  sock->send(server, {1});
  loop.run();
  EXPECT_FALSE(received);
}

TEST(Network, NoListenerDropsSilently) {
  netsim::EventLoop loop;
  netsim::Network net(loop);
  auto sock = net.open_udp({*IpAddress::parse("192.0.2.1"), 5000});
  bool received = false;
  sock->set_receiver(
      [&](const Endpoint&, std::span<const uint8_t>) { received = true; });
  sock->send({*IpAddress::parse("10.9.9.9"), 443}, {1});
  loop.run();
  EXPECT_FALSE(received);
}

TEST(Network, FullLossDropsEverything) {
  netsim::EventLoop loop;
  netsim::Network net(loop);
  EchoService echo;
  Endpoint server{*IpAddress::parse("10.0.0.1"), 443};
  net.add_udp_service(server, &echo);
  net.set_link(server.addr, {.latency_us = 10, .loss = 1.0, .silent = false});
  auto sock = net.open_udp({*IpAddress::parse("192.0.2.1"), 5000});
  bool received = false;
  sock->set_receiver(
      [&](const Endpoint&, std::span<const uint8_t>) { received = true; });
  for (int i = 0; i < 10; ++i) sock->send(server, {1});
  loop.run();
  EXPECT_FALSE(received);
}

class GreeterTcp : public netsim::TcpService {
 public:
  class Session : public netsim::TcpSession {
   public:
    std::vector<uint8_t> on_data(std::span<const uint8_t> data) override {
      std::string in(data.begin(), data.end());
      std::string out = "hello " + in;
      return {out.begin(), out.end()};
    }
  };
  std::unique_ptr<netsim::TcpSession> accept(const Endpoint&) override {
    return std::make_unique<Session>();
  }
};

TEST(Network, TcpConnectAndExchange) {
  netsim::EventLoop loop;
  netsim::Network net(loop);
  GreeterTcp service;
  Endpoint server{*IpAddress::parse("10.0.0.2"), 443};
  net.add_tcp_service(server, &service);

  EXPECT_TRUE(net.tcp_port_open(server));
  EXPECT_FALSE(net.tcp_port_open({server.addr, 80}));

  auto conn = net.tcp_connect({*IpAddress::parse("192.0.2.1"), 40000}, server);
  ASSERT_TRUE(conn.has_value());
  std::string msg = "world";
  auto reply = conn->exchange({reinterpret_cast<const uint8_t*>(msg.data()),
                               msg.size()});
  EXPECT_EQ(std::string(reply.begin(), reply.end()), "hello world");
  EXPECT_GT(loop.now_us(), 0u);
}

TEST(Network, TcpConnectToClosedPortFails) {
  netsim::EventLoop loop;
  netsim::Network net(loop);
  auto conn = net.tcp_connect({*IpAddress::parse("192.0.2.1"), 40000},
                              {*IpAddress::parse("10.0.0.3"), 443});
  EXPECT_FALSE(conn.has_value());
}

TEST(Network, LossRateIsApproximatelyHonored) {
  netsim::EventLoop loop;
  netsim::Network net(loop);
  EchoService echo;
  Endpoint server{*IpAddress::parse("10.0.0.7"), 443};
  net.add_udp_service(server, &echo);
  net.set_link(server.addr, {.latency_us = 10, .loss = 0.5, .silent = false});
  auto sock = net.open_udp({*IpAddress::parse("192.0.2.9"), 5001});
  int received = 0;
  sock->set_receiver(
      [&](const Endpoint&, std::span<const uint8_t>) { ++received; });
  const int kProbes = 2000;
  for (int i = 0; i < kProbes; ++i) sock->send(server, {1});
  loop.run();
  // Both directions traverse the lossy link: expected delivery 25 %.
  EXPECT_GT(received, kProbes / 8);
  EXPECT_LT(received, kProbes / 2);
}

TEST(Network, TapSeesEveryDatagramIncludingDropped) {
  netsim::EventLoop loop;
  netsim::Network net(loop);
  EchoService echo;
  Endpoint server{*IpAddress::parse("10.0.0.8"), 443};
  net.add_udp_service(server, &echo);
  net.set_link(server.addr, {.latency_us = 10, .loss = 0, .silent = true});
  size_t tapped = 0;
  net.set_tap([&](const Endpoint&, const Endpoint&,
                  std::span<const uint8_t>) { ++tapped; });
  auto sock = net.open_udp({*IpAddress::parse("192.0.2.9"), 5002});
  for (int i = 0; i < 5; ++i) sock->send(server, {1});
  loop.run();
  EXPECT_EQ(tapped, 5u);  // silent drop happens after the tap
}

TEST(EventLoop, CancelFromWithinCallback) {
  netsim::EventLoop loop;
  bool second_fired = false;
  netsim::TimerId second = 0;
  loop.schedule_in(10, [&] { loop.cancel(second); });
  second = loop.schedule_in(20, [&] { second_fired = true; });
  loop.run();
  EXPECT_FALSE(second_fired);
}

TEST(EventLoop, StaleIdDoesNotCancelRecycledSlot) {
  // After a timer fires, its slot is recycled with a bumped generation;
  // cancelling with the old id must be a no-op on the new occupant.
  netsim::EventLoop loop;
  auto stale = loop.schedule_in(10, [] {});
  loop.run();
  bool fired = false;
  loop.schedule_in(10, [&] { fired = true; });  // reuses the freed slot
  loop.cancel(stale);
  EXPECT_EQ(loop.pending(), 1u);
  loop.run();
  EXPECT_TRUE(fired);
}

TEST(EventLoop, DoubleCancelIsIdempotent) {
  netsim::EventLoop loop;
  auto id = loop.schedule_in(10, [] {});
  EXPECT_EQ(loop.pending(), 1u);
  loop.cancel(id);
  EXPECT_EQ(loop.pending(), 0u);
  loop.cancel(id);  // second cancel must not underflow pending()
  EXPECT_EQ(loop.pending(), 0u);
  loop.run();
  EXPECT_EQ(loop.now_us(), 0u);  // cancelled events never advance time
}

TEST(EventLoop, CancelledTombstonesDoNotAdvanceClock) {
  netsim::EventLoop loop;
  std::vector<netsim::TimerId> ids;
  for (int i = 0; i < 64; ++i)
    ids.push_back(loop.schedule_in(100 + i, [] { FAIL(); }));
  for (auto id : ids) loop.cancel(id);
  EXPECT_EQ(loop.pending(), 0u);
  loop.run();
  EXPECT_EQ(loop.now_us(), 0u);
}

TEST(SmallCallback, InlineAndHeapCallablesBothRun) {
  int hits = 0;
  netsim::SmallCallback small([&hits] { ++hits; });
  small();
  // Force the heap fallback with captures far beyond the inline budget.
  std::array<uint64_t, 32> big{};
  big[0] = 1;
  netsim::SmallCallback large([&hits, big] { hits += static_cast<int>(big[0]); });
  netsim::SmallCallback moved = std::move(large);
  moved();
  EXPECT_EQ(hits, 2);
}

TEST(SmallCallback, ResetReleasesCapturedResources) {
  auto token = std::make_shared<int>(7);
  std::weak_ptr<int> watch = token;
  netsim::SmallCallback cb([token] { (void)*token; });
  token.reset();
  EXPECT_FALSE(watch.expired());
  cb.reset();  // what EventLoop::cancel does: destroy the callable now
  EXPECT_TRUE(watch.expired());
}

// --- Differential: heap-based loop vs a reference map implementation ---
//
// The reference replicates the pre-hotpath EventLoop exactly: two
// std::maps keyed by (time, id) with eager cancellation. The heap loop
// must match its fire order (including the same-time scheduling-order
// guarantee), virtual clock and pending() accounting on randomized
// schedule/cancel/run interleavings.
class ReferenceEventLoop {
 public:
  uint64_t now_us() const { return now_us_; }

  uint64_t schedule_at(uint64_t at_us, std::function<void()> fn) {
    if (at_us < now_us_) at_us = now_us_;
    uint64_t id = next_id_++;
    queue_.emplace(std::make_pair(at_us, id), std::move(fn));
    id_to_time_.emplace(id, at_us);
    return id;
  }

  uint64_t schedule_in(uint64_t delay_us, std::function<void()> fn) {
    return schedule_at(now_us_ + delay_us, std::move(fn));
  }

  void cancel(uint64_t id) {
    auto it = id_to_time_.find(id);
    if (it == id_to_time_.end()) return;
    queue_.erase({it->second, id});
    id_to_time_.erase(it);
  }

  void run_until(uint64_t limit_us) {
    while (!queue_.empty()) {
      auto it = queue_.begin();
      if (it->first.first > limit_us) {
        now_us_ = limit_us;
        return;
      }
      auto fn = std::move(it->second);
      now_us_ = it->first.first;
      id_to_time_.erase(it->first.second);
      queue_.erase(it);
      fn();
    }
    // Queue drained before the limit: clock still advances to the limit.
    if (limit_us != UINT64_MAX && limit_us > now_us_) now_us_ = limit_us;
  }

  size_t pending() const { return queue_.size(); }

 private:
  std::map<std::pair<uint64_t, uint64_t>, std::function<void()>> queue_;
  std::map<uint64_t, uint64_t> id_to_time_;
  uint64_t now_us_ = 0;
  uint64_t next_id_ = 1;
};

TEST(EventLoopDifferential, RandomizedScheduleCancelRunMatchesReference) {
  for (uint64_t seed = 1; seed <= 8; ++seed) {
    std::mt19937_64 rng(seed);
    netsim::EventLoop heap_loop;
    ReferenceEventLoop map_loop;
    // Parallel handles for the same logical timer in both worlds.
    std::vector<std::pair<netsim::TimerId, uint64_t>> handles;
    // Fire logs: (label, virtual time) per firing.
    std::vector<std::pair<int, uint64_t>> heap_log, map_log;
    int next_label = 0;

    // A firing callback with label % 5 == 0 schedules a nested timer
    // (parameters derived from the label so both worlds agree) --
    // exercising schedule-from-within-callback on both sides.
    auto make_heap_fn = [&](int label) {
      return [&, label] {
        heap_log.push_back({label, heap_loop.now_us()});
        if (label % 5 == 0)
          heap_loop.schedule_in(1 + label % 97, [&, label] {
            heap_log.push_back({label + 1'000'000, heap_loop.now_us()});
          });
      };
    };
    auto make_map_fn = [&](int label) {
      return [&, label] {
        map_log.push_back({label, map_loop.now_us()});
        if (label % 5 == 0)
          map_loop.schedule_in(1 + label % 97, [&, label] {
            map_log.push_back({label + 1'000'000, map_loop.now_us()});
          });
      };
    };

    for (int step = 0; step < 3000; ++step) {
      uint64_t op = rng() % 100;
      if (op < 55) {
        // Coarse delay grid so same-time collisions are common.
        uint64_t delay = (rng() % 40) * 10;
        int label = next_label++;
        handles.push_back({heap_loop.schedule_in(delay, make_heap_fn(label)),
                           map_loop.schedule_in(delay, make_map_fn(label))});
      } else if (op < 80 && !handles.empty()) {
        // Cancel a random handle: sometimes live, sometimes already
        // fired or already cancelled (both must no-op identically).
        auto& h = handles[rng() % handles.size()];
        heap_loop.cancel(h.first);
        map_loop.cancel(h.second);
      } else if (op < 95) {
        uint64_t limit = heap_loop.now_us() + rng() % 200;
        heap_loop.run_until(limit);
        map_loop.run_until(limit);
      } else {
        heap_loop.run_until(heap_loop.now_us());  // drain overdue only
        map_loop.run_until(map_loop.now_us());
      }
      ASSERT_EQ(heap_loop.pending(), map_loop.pending())
          << "seed " << seed << " step " << step;
      ASSERT_EQ(heap_loop.now_us(), map_loop.now_us())
          << "seed " << seed << " step " << step;
      ASSERT_EQ(heap_log, map_log) << "seed " << seed << " step " << step;
    }
    heap_loop.run();
    map_loop.run_until(UINT64_MAX);
    EXPECT_EQ(heap_log, map_log) << "seed " << seed;
    EXPECT_EQ(heap_loop.pending(), map_loop.pending()) << "seed " << seed;
    EXPECT_EQ(heap_loop.now_us(), map_loop.now_us()) << "seed " << seed;
    EXPECT_FALSE(heap_log.empty());
  }
}

// ---------------------------------------------------------------------
// Fault-injection fabric (impairment.h / the post-`silent` half of
// LinkProperties).

uint64_t counter_value(const telemetry::MetricsRegistry& metrics,
                       const std::string& name) {
  const auto* counter = metrics.find_counter(name);
  return counter ? counter->value() : 0;
}

TEST(Impairment, NamedProfileLookup) {
  for (auto name : netsim::impairment_profile_names()) {
    const auto* profile = netsim::find_impairment_profile(name);
    ASSERT_NE(profile, nullptr) << name;
    EXPECT_EQ(profile->name, name);
  }
  EXPECT_EQ(netsim::find_impairment_profile("nope"), nullptr);
  const auto* clean = netsim::find_impairment_profile("clean");
  ASSERT_NE(clean, nullptr);
  EXPECT_TRUE(clean->is_clean());
  for (const char* name : {"lossy", "bursty", "hostile", "throttled"})
    EXPECT_FALSE(netsim::find_impairment_profile(name)->is_clean()) << name;
}

TEST(Impairment, ApplyPreservesLatencyAndLegacyLoss) {
  netsim::LinkProperties props;
  props.latency_us = 1234;
  props.loss = 0.25;
  props.silent = false;
  netsim::find_impairment_profile("hostile")->apply(props);
  EXPECT_EQ(props.latency_us, 1234u);
  EXPECT_DOUBLE_EQ(props.loss, 0.25);
  EXPECT_TRUE(props.impaired());
  // A clean overlay turns the fabric back off without touching the
  // legacy fields either.
  netsim::find_impairment_profile("clean")->apply(props);
  EXPECT_FALSE(props.impaired());
  EXPECT_EQ(props.latency_us, 1234u);
}

TEST(Network, DropCauseAccountingCoversSilentLossUnrouted) {
  netsim::EventLoop loop;
  netsim::Network net(loop);
  telemetry::MetricsRegistry metrics;
  net.set_metrics(&metrics);
  EchoService echo;
  Endpoint silent_server{*IpAddress::parse("10.1.0.1"), 443};
  net.add_udp_service(silent_server, &echo);
  net.set_link(silent_server.addr,
               {.latency_us = 10, .loss = 0, .silent = true});
  Endpoint lossy_server{*IpAddress::parse("10.1.0.2"), 443};
  net.add_udp_service(lossy_server, &echo);
  net.set_link(lossy_server.addr,
               {.latency_us = 10, .loss = 1.0, .silent = false});

  auto sock = net.open_udp({*IpAddress::parse("192.0.2.30"), 6000});
  sock->set_receiver([](const Endpoint&, std::span<const uint8_t>) {});
  sock->send(silent_server, {1});
  sock->send(lossy_server, {2});
  sock->send({*IpAddress::parse("10.1.0.99"), 443}, {3});  // no listener
  loop.run();
  EXPECT_EQ(counter_value(metrics, "net.datagrams_sent"), 3u);
  EXPECT_EQ(counter_value(metrics, "net.dropped_silent"), 1u);
  EXPECT_EQ(counter_value(metrics, "net.dropped_loss"), 1u);
  EXPECT_EQ(counter_value(metrics, "net.dropped_unrouted"), 1u);
  EXPECT_EQ(counter_value(metrics, "net.delivered"), 0u);
}

TEST(Network, TokenBucketRateLimiterDropsOverBudget) {
  netsim::EventLoop loop;
  netsim::Network net(loop);
  telemetry::MetricsRegistry metrics;
  net.set_metrics(&metrics);
  EchoService echo;
  Endpoint server{*IpAddress::parse("10.2.0.1"), 443};
  net.add_udp_service(server, &echo);
  netsim::LinkProperties props;
  props.latency_us = 10;
  props.rate_limit_pps = 100.0;  // one token per 10ms
  props.rate_burst = 2.0;
  net.set_link(server.addr, props);

  auto sock = net.open_udp({*IpAddress::parse("192.0.2.31"), 6001});
  int received = 0;
  sock->set_receiver(
      [&](const Endpoint&, std::span<const uint8_t>) { ++received; });
  // A same-instant burst of 10: only the 2-token burst passes. The
  // echo replies also cross the impaired link and spend tokens, so
  // just assert the policer bit both directions.
  for (int i = 0; i < 10; ++i) sock->send(server, {1});
  loop.run();
  EXPECT_GE(counter_value(metrics, "net.dropped_rate_limited"), 8u);
  EXPECT_LE(received, 2);
  // After a long idle gap the bucket refills up to the burst.
  loop.run_until(loop.now_us() + 1'000'000);
  uint64_t dropped_before =
      counter_value(metrics, "net.dropped_rate_limited");
  sock->send(server, {2});
  loop.run();
  EXPECT_EQ(counter_value(metrics, "net.dropped_rate_limited"),
            dropped_before);
}

TEST(Network, GilbertElliottLossTracksConfiguredRates) {
  netsim::EventLoop loop;
  netsim::Network net(loop);
  telemetry::MetricsRegistry metrics;
  net.set_metrics(&metrics);
  // Sink service: no replies, so only the forward direction draws.
  class Sink : public netsim::UdpService {
   public:
    void on_datagram(const Endpoint&, std::span<const uint8_t>,
                     const Transmit&) override {}
  } sink;
  Endpoint server{*IpAddress::parse("10.2.0.2"), 443};
  net.add_udp_service(server, &sink);
  netsim::LinkProperties props;
  props.latency_us = 10;
  props.ge_loss_good = 0.01;
  props.ge_loss_bad = 0.6;
  props.ge_p_good_bad = 0.05;
  props.ge_p_bad_good = 0.25;
  net.set_link(server.addr, props);

  auto sock = net.open_udp({*IpAddress::parse("192.0.2.32"), 6002});
  const int kProbes = 5000;
  for (int i = 0; i < kProbes; ++i) sock->send(server, {1});
  loop.run();
  // Stationary bad-state share = 0.05/(0.05+0.25) = 1/6, mean loss
  // = (5/6)*0.01 + (1/6)*0.6 ~ 10.8 %. Allow generous slack.
  uint64_t lost = counter_value(metrics, "net.dropped_loss");
  EXPECT_GT(lost, kProbes * 5 / 100);
  EXPECT_LT(lost, kProbes * 20 / 100);
  EXPECT_EQ(lost + counter_value(metrics, "net.delivered"),
            static_cast<uint64_t>(kProbes));
}

TEST(Network, CorruptionFlipsExactlyOneBit) {
  netsim::EventLoop loop;
  netsim::Network net(loop);
  telemetry::MetricsRegistry metrics;
  net.set_metrics(&metrics);
  class Capture : public netsim::UdpService {
   public:
    std::vector<std::vector<uint8_t>> got;
    void on_datagram(const Endpoint&, std::span<const uint8_t> payload,
                     const Transmit&) override {
      got.emplace_back(payload.begin(), payload.end());
    }
  } capture;
  Endpoint server{*IpAddress::parse("10.2.0.3"), 443};
  net.add_udp_service(server, &capture);
  netsim::LinkProperties props;
  props.latency_us = 10;
  props.corrupt = 1.0;
  net.set_link(server.addr, props);

  auto sock = net.open_udp({*IpAddress::parse("192.0.2.33"), 6003});
  const std::vector<uint8_t> sent{0x00, 0xff, 0x5a, 0xa5};
  for (int i = 0; i < 20; ++i) sock->send(server, sent);
  loop.run();
  ASSERT_EQ(capture.got.size(), 20u);
  EXPECT_EQ(counter_value(metrics, "net.corrupted"), 20u);
  for (const auto& got : capture.got) {
    ASSERT_EQ(got.size(), sent.size());
    int flipped_bits = 0;
    for (size_t i = 0; i < sent.size(); ++i)
      flipped_bits += __builtin_popcount(got[i] ^ sent[i]);
    EXPECT_EQ(flipped_bits, 1);
  }
}

TEST(Network, DuplicationDeliversTwice) {
  netsim::EventLoop loop;
  netsim::Network net(loop);
  telemetry::MetricsRegistry metrics;
  net.set_metrics(&metrics);
  class Count : public netsim::UdpService {
   public:
    int got = 0;
    void on_datagram(const Endpoint&, std::span<const uint8_t>,
                     const Transmit&) override {
      ++got;
    }
  } count;
  Endpoint server{*IpAddress::parse("10.2.0.4"), 443};
  net.add_udp_service(server, &count);
  netsim::LinkProperties props;
  props.latency_us = 10;
  props.duplicate = 1.0;
  net.set_link(server.addr, props);

  auto sock = net.open_udp({*IpAddress::parse("192.0.2.34"), 6004});
  sock->send(server, {7});
  loop.run();
  EXPECT_EQ(count.got, 2);
  EXPECT_EQ(counter_value(metrics, "net.duplicated"), 1u);
  EXPECT_EQ(counter_value(metrics, "net.delivered"), 2u);
}

TEST(Network, ReorderExpiredDropHasItsOwnCause) {
  netsim::EventLoop loop;
  netsim::Network net(loop);
  telemetry::MetricsRegistry metrics;
  net.set_metrics(&metrics);
  EchoService echo;
  Endpoint server{*IpAddress::parse("10.2.0.5"), 443};
  net.add_udp_service(server, &echo);
  netsim::LinkProperties props;
  props.latency_us = 10;
  props.reorder = 1.0;
  props.reorder_extra_us = 50'000;  // held back 50ms
  net.set_link(server.addr, props);

  auto sock = net.open_udp({*IpAddress::parse("192.0.2.35"), 6005});
  int received = 0;
  sock->set_receiver(
      [&](const Endpoint&, std::span<const uint8_t>) { ++received; });
  sock->send(server, {1});
  // Let the request reach the server and the (also reordered) reply
  // enter flight, then close the socket before the reply lands -- the
  // classic reordered-past-its-attempt datagram.
  loop.run_until(loop.now_us() + 60'100);
  sock.reset();
  loop.run();
  EXPECT_EQ(received, 0);
  EXPECT_EQ(counter_value(metrics, "net.reordered"), 2u);  // both legs
  EXPECT_EQ(counter_value(metrics, "net.dropped_reorder_expired"), 1u);
  EXPECT_EQ(counter_value(metrics, "net.dropped_unrouted"), 0u);
}

TEST(Network, ImpairmentAppliesToBothDirections) {
  // The profile lives on the server's link only, but replies from the
  // server must pass the same pipeline (imp lookup falls back to the
  // sender's link).
  netsim::EventLoop loop;
  netsim::Network net(loop);
  telemetry::MetricsRegistry metrics;
  net.set_metrics(&metrics);
  EchoService echo;
  Endpoint server{*IpAddress::parse("10.2.0.6"), 443};
  net.add_udp_service(server, &echo);
  netsim::LinkProperties props;
  props.latency_us = 10;
  props.corrupt = 1.0;
  net.set_link(server.addr, props);

  auto sock = net.open_udp({*IpAddress::parse("192.0.2.36"), 6006});
  sock->set_receiver([](const Endpoint&, std::span<const uint8_t>) {});
  sock->send(server, {0x00, 0x00});
  loop.run();
  // Request corrupted on the way in, reply corrupted on the way out.
  EXPECT_EQ(counter_value(metrics, "net.corrupted"), 2u);
}

TEST(Network, ImpairmentIsDeterministicAcrossRuns) {
  auto run = [] {
    netsim::EventLoop loop;
    netsim::Network net(loop, 0x5eed);
    EchoService echo;
    Endpoint server{*IpAddress::parse("10.2.0.7"), 443};
    net.add_udp_service(server, &echo);
    netsim::LinkProperties props;
    props.latency_us = 10;
    netsim::find_impairment_profile("hostile")->apply(props);
    net.set_link(server.addr, props);

    auto sock = net.open_udp({*IpAddress::parse("192.0.2.37"), 6007});
    std::vector<std::pair<uint64_t, std::vector<uint8_t>>> log;
    sock->set_receiver(
        [&](const Endpoint&, std::span<const uint8_t> payload) {
          log.emplace_back(loop.now_us(),
                           std::vector<uint8_t>(payload.begin(),
                                                payload.end()));
        });
    for (uint8_t i = 0; i < 100; ++i) sock->send(server, {i, 0x5a});
    loop.run();
    return log;
  };
  auto first = run();
  auto second = run();
  EXPECT_FALSE(first.empty());
  EXPECT_EQ(first, second);
}

TEST(Network, LegacyLossStreamUntouchedByFabricDraws) {
  // The shared-stream legacy loss RNG must see the same draw sequence
  // whether or not impaired links exist elsewhere in the fabric --
  // otherwise enabling a profile on one host would perturb clean
  // hosts' loss patterns and break --impair clean == no flag.
  auto run = [](bool with_impaired_neighbor) {
    netsim::EventLoop loop;
    netsim::Network net(loop, 0xfeed);
    EchoService echo;
    Endpoint lossy{*IpAddress::parse("10.2.0.8"), 443};
    net.add_udp_service(lossy, &echo);
    net.set_link(lossy.addr,
                 {.latency_us = 10, .loss = 0.5, .silent = false});
    Endpoint neighbor{*IpAddress::parse("10.2.0.9"), 443};
    if (with_impaired_neighbor) {
      netsim::LinkProperties props;
      props.latency_us = 10;
      netsim::find_impairment_profile("hostile")->apply(props);
      net.set_link(neighbor.addr, props);
    }
    auto sock = net.open_udp({*IpAddress::parse("192.0.2.38"), 6008});
    std::vector<uint64_t> arrivals;
    sock->set_receiver([&](const Endpoint&, std::span<const uint8_t>) {
      arrivals.push_back(loop.now_us());
    });
    for (int i = 0; i < 200; ++i) {
      sock->send(lossy, {1});
      // Interleaved traffic across the (possibly) impaired link: its
      // fabric draws must come from the counter-based stream, never
      // from the legacy shared loss stream.
      if (with_impaired_neighbor) sock->send(neighbor, {2});
    }
    loop.run();
    return arrivals;
  };
  EXPECT_EQ(run(false), run(true));
}

}  // namespace
