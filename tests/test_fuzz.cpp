// Decoder fuzz sweeps: every network-facing parser must handle
// adversarial bytes by throwing wire::DecodeError or returning an empty
// optional -- never crashing, looping or reading out of bounds. Inputs
// are seeded random buffers plus mutated valid messages.
#include <gtest/gtest.h>

#include "crypto/rng.h"
#include "dns/wire.h"
#include "http/alt_svc.h"
#include "http/h3.h"
#include "http/message.h"
#include "quic/frame.h"
#include "quic/packet.h"
#include "quic/transport_params.h"
#include "tls/handshake.h"
#include "tls/record.h"

namespace {

class FuzzSeed : public ::testing::TestWithParam<int> {
 protected:
  crypto::Rng rng{static_cast<uint64_t>(GetParam()) * 2654435761u + 17};
};

TEST_P(FuzzSeed, QuicFrameDecoderNeverCrashes) {
  for (int round = 0; round < 40; ++round) {
    auto bytes = rng.bytes(rng.below(300));
    try {
      auto frames = quic::decode_frames(bytes);
      // If it decodes, re-encoding must not throw either.
      quic::encode_frames(frames);
    } catch (const wire::DecodeError&) {
    }
  }
}

TEST_P(FuzzSeed, TransportParamsDecoderNeverCrashes) {
  for (int round = 0; round < 40; ++round) {
    auto bytes = rng.bytes(rng.below(200));
    try {
      quic::decode_transport_parameters(bytes);
    } catch (const wire::DecodeError&) {
    }
  }
}

TEST_P(FuzzSeed, TlsHandshakeDecoderNeverCrashes) {
  for (int round = 0; round < 40; ++round) {
    auto bytes = rng.bytes(rng.below(400));
    try {
      tls::decode_handshake_flight(bytes);
    } catch (const wire::DecodeError&) {
    }
  }
}

TEST_P(FuzzSeed, TlsRecordDecoderNeverCrashes) {
  for (int round = 0; round < 40; ++round) {
    auto bytes = rng.bytes(rng.below(400));
    try {
      tls::decode_records(bytes);
    } catch (const wire::DecodeError&) {
    }
  }
}

TEST_P(FuzzSeed, DnsMessageDecoderNeverCrashes) {
  for (int round = 0; round < 40; ++round) {
    auto bytes = rng.bytes(rng.below(300));
    try {
      dns::decode_message(bytes);
    } catch (const wire::DecodeError&) {
    } catch (const std::bad_variant_access&) {
      ADD_FAILURE() << "variant misuse on garbage input";
    }
  }
}

TEST_P(FuzzSeed, PacketUnprotectNeverCrashes) {
  auto dcid = rng.bytes(8);
  auto protector =
      quic::PacketProtector::for_initial(quic::kVersion1, dcid, false);
  for (int round = 0; round < 30; ++round) {
    auto bytes = rng.bytes(50 + rng.below(1400));
    size_t offset = 0;
    EXPECT_FALSE(protector.unprotect(bytes, offset).has_value());
  }
}

TEST_P(FuzzSeed, MutatedValidPacketEitherOpensOrFailsClean) {
  auto dcid = rng.bytes(8);
  auto protector =
      quic::PacketProtector::for_initial(quic::kDraft29, dcid, false);
  quic::Packet packet;
  packet.type = quic::PacketType::kInitial;
  packet.version = quic::kDraft29;
  packet.dcid = dcid;
  packet.scid = rng.bytes(8);
  packet.packet_number = 7;
  packet.payload = quic::encode_frames(
      {quic::CryptoFrame{0, rng.bytes(200)}, quic::PaddingFrame{400}});
  auto valid = protector.protect(packet);
  for (int round = 0; round < 60; ++round) {
    auto mutated = valid;
    size_t flips = 1 + rng.below(4);
    for (size_t f = 0; f < flips; ++f)
      mutated[rng.below(mutated.size())] ^=
          static_cast<uint8_t>(1 + rng.below(255));
    size_t offset = 0;
    auto opened = protector.unprotect(mutated, offset);
    if (opened) {
      // Only possible if the mutation missed everything authenticated
      // -- i.e. the bytes are identical (flips cancelled out).
      EXPECT_EQ(mutated, valid);
    }
  }
}

TEST_P(FuzzSeed, AltSvcParserNeverCrashes) {
  static constexpr char kChars[] =
      "abcdeh3-29=\":,; %Q\\\"0127m" ;
  for (int round = 0; round < 60; ++round) {
    std::string value;
    size_t len = rng.below(60);
    for (size_t i = 0; i < len; ++i)
      value.push_back(kChars[rng.below(sizeof kChars - 1)]);
    http::parse_alt_svc(value);  // must not crash; result irrelevant
  }
}

TEST_P(FuzzSeed, H3DecodersNeverCrash) {
  for (int round = 0; round < 40; ++round) {
    auto bytes = rng.bytes(rng.below(300));
    http::h3::decode_request(bytes);
    http::h3::decode_response(bytes);
  }
}

TEST_P(FuzzSeed, HttpParsersNeverCrash) {
  static constexpr char kChars[] = "GET /HTTP1.02 \r\n:ab;=";
  for (int round = 0; round < 60; ++round) {
    std::string text;
    size_t len = rng.below(120);
    for (size_t i = 0; i < len; ++i)
      text.push_back(kChars[rng.below(sizeof kChars - 1)]);
    http::Request::parse(text);
    http::Response::parse(text);
  }
}

TEST_P(FuzzSeed, VersionNegotiationDecoderNeverCrashes) {
  for (int round = 0; round < 40; ++round) {
    auto bytes = rng.bytes(rng.below(100));
    quic::decode_version_negotiation(bytes);
    quic::peek_datagram(bytes);
    auto odcid = rng.bytes(8);
    quic::decode_retry(bytes, odcid);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzSeed, ::testing::Range(0, 8));

}  // namespace
