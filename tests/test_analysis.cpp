// Analysis-layer tests: joins, AS rank CDFs, set counters with "Other"
// folding, the Table-5 TLS comparison semantics, source overlap and the
// table renderer.
#include <gtest/gtest.h>

#include "analysis/stats.h"
#include "analysis/table.h"

namespace {

using namespace analysis;
using netsim::IpAddress;

dns::BulkRecord record(const std::string& domain,
                       std::vector<const char*> v4) {
  dns::BulkRecord r;
  r.domain = domain;
  for (const char* addr : v4) r.a.push_back(*IpAddress::parse(addr));
  return r;
}

TEST(DnsJoin, MapsAddressesToDomains) {
  DnsJoin join;
  join.add(record("a.example", {"1.1.1.1", "1.1.1.2"}));
  join.add(record("b.example", {"1.1.1.1"}));
  EXPECT_EQ(join.domain_count(*IpAddress::parse("1.1.1.1")), 2u);
  EXPECT_EQ(join.domain_count(*IpAddress::parse("1.1.1.2")), 1u);
  EXPECT_EQ(join.domain_count(*IpAddress::parse("9.9.9.9")), 0u);
  EXPECT_EQ(join.total_pairs(), 3u);
  EXPECT_EQ(join.distinct_domains({*IpAddress::parse("1.1.1.1"),
                                   *IpAddress::parse("1.1.1.2")}),
            2u);
}

TEST(AsDistribution, RankingAndCdf) {
  auto registry = internet::AsRegistry::standard(4);
  AsDistribution dist(registry);
  // 6 Cloudflare addresses, 3 Google, 1 tail.
  for (uint64_t i = 0; i < 6; ++i)
    dist.add(registry.allocate(internet::kAsCloudflare,
                               netsim::Family::kIpv4, i));
  for (uint64_t i = 0; i < 3; ++i)
    dist.add(registry.allocate(internet::kAsGoogle, netsim::Family::kIpv4, i));
  dist.add(registry.allocate(registry.tail_asn(0), netsim::Family::kIpv4, 0));

  EXPECT_EQ(dist.total(), 10u);
  EXPECT_EQ(dist.distinct_as(), 3u);
  auto ranked = dist.ranked();
  EXPECT_EQ(ranked[0].name, "Cloudflare, Inc.");
  EXPECT_EQ(ranked[0].count, 6u);
  EXPECT_DOUBLE_EQ(dist.top_share(1), 0.6);
  EXPECT_DOUBLE_EQ(dist.top_share(2), 0.9);
  EXPECT_EQ(dist.ases_to_cover(0.8), 2u);
  EXPECT_EQ(dist.ases_to_cover(0.95), 3u);
  auto cdf = dist.rank_cdf();
  ASSERT_EQ(cdf.size(), 3u);
  EXPECT_DOUBLE_EQ(cdf.back(), 1.0);
}

TEST(SetCounter, RankedWithOtherFoldsRareKeys) {
  SetCounter counter;
  counter.add("big", 97);
  counter.add("rare-a", 2);
  counter.add("rare-b", 1);
  auto entries = counter.ranked_with_other(0.05);
  ASSERT_EQ(entries.size(), 2u);
  EXPECT_EQ(entries[0].key, "big");
  EXPECT_EQ(entries[1].key, "Other");
  EXPECT_EQ(entries[1].count, 3u);
  EXPECT_EQ(counter.distinct(), 3u);
  EXPECT_EQ(counter.count("rare-a"), 2u);
}

TEST(SetCounter, NoOtherBucketWhenAllAboveThreshold) {
  SetCounter counter;
  counter.add("a", 50);
  counter.add("b", 50);
  auto entries = counter.ranked_with_other(0.01);
  ASSERT_EQ(entries.size(), 2u);
  EXPECT_NE(entries[0].key, "Other");
  EXPECT_NE(entries[1].key, "Other");
}

tls::TlsDetails details(uint16_t version, const char* cert_cn,
                        uint64_t serial,
                        std::vector<uint16_t> extensions) {
  tls::TlsDetails d;
  d.negotiated_version = version;
  d.cipher_suite = tls::CipherSuite::kAes128GcmSha256;
  d.key_exchange_group = 0x1d;
  tls::Certificate cert;
  cert.subject_cn = cert_cn;
  cert.issuer_cn = "CA";
  cert.serial = serial;
  d.certificate_chain.push_back(cert);
  d.server_extensions = std::move(extensions);
  return d;
}

TEST(TlsComparison, AgreementAndVersionConditioning) {
  TlsComparison comparison;
  // Pair 1: identical TLS 1.3 deployments.
  comparison.add(details(0x0304, "a.example", 1, {16, 43, 51}),
                 details(0x0304, "a.example", 1, {16, 43, 51}));
  // Pair 2: TCP side is TLS 1.2 -- version differs, and the pair is
  // excluded from the group/cipher/extension denominators.
  comparison.add(details(0x0304, "b.example", 2, {16, 43, 51}),
                 details(0x0303, "b.example", 2, {16}));
  // Pair 3: different certificate (rotation), same everything else.
  comparison.add(details(0x0304, "c.example", 3, {16, 43, 51}),
                 details(0x0304, "c.example", 99, {16, 43, 51}));
  EXPECT_EQ(comparison.pairs(), 3u);
  EXPECT_NEAR(comparison.same_certificate(), 100.0 * 2 / 3, 0.01);
  EXPECT_NEAR(comparison.same_version(), 100.0 * 2 / 3, 0.01);
  EXPECT_DOUBLE_EQ(comparison.same_cipher(), 100.0);      // of 2 TLS1.3 pairs
  EXPECT_DOUBLE_EQ(comparison.same_extensions(), 100.0);
}

TEST(TlsComparison, TransportParameterExtensionExcluded) {
  // The QUIC side necessarily carries the TP extension (0x39/0xffa5);
  // the comparison must ignore it (paper's methodology).
  auto quic_details = details(0x0304, "a", 1, {16, 43, 51, 0x39});
  auto tcp_details = details(0x0304, "a", 1, {16, 43, 51});
  TlsComparison comparison;
  comparison.add(quic_details, tcp_details);
  EXPECT_DOUBLE_EQ(comparison.same_extensions(), 100.0);
  auto comparable = comparable_extensions(quic_details);
  EXPECT_EQ(comparable, (std::vector<uint16_t>{16, 43, 51}));
  auto draft = details(0x0304, "a", 1, {16, 0xffa5});
  EXPECT_EQ(comparable_extensions(draft), (std::vector<uint16_t>{16}));
}

TEST(SourceOverlap, CommonAndUniqueCounts) {
  auto a1 = *IpAddress::parse("1.0.0.1");
  auto a2 = *IpAddress::parse("1.0.0.2");
  auto a3 = *IpAddress::parse("1.0.0.3");
  auto a4 = *IpAddress::parse("1.0.0.4");
  std::map<std::string, std::set<IpAddress>> sources{
      {"zmap", {a1, a2, a3}},
      {"alt", {a1, a4}},
      {"https", {a1, a2}},
  };
  auto overlap = compute_overlap(sources);
  EXPECT_EQ(overlap.common_all, 1u);
  EXPECT_EQ(overlap.unique["zmap"], 1u);   // a3
  EXPECT_EQ(overlap.unique["alt"], 1u);    // a4
  EXPECT_EQ(overlap.unique["https"], 0u);
}

TEST(Table, RendersAlignedColumns) {
  Table table({"Name", "Count"});
  table.row({"cloudflare", "123"});
  table.row({"g", "4"});
  auto text = table.render();
  EXPECT_NE(text.find("Name"), std::string::npos);
  EXPECT_NE(text.find("cloudflare  123"), std::string::npos);
  // Separator line present.
  EXPECT_NE(text.find("-----"), std::string::npos);
}

TEST(Table, ShortRowsPadded) {
  Table table({"A", "B", "C"});
  table.row({"x"});
  EXPECT_NO_THROW(table.render());
}

TEST(Format, PctAndNum) {
  EXPECT_EQ(pct(12.345, 2), "12.35 %");
  EXPECT_EQ(pct(7.0, 1), "7.0 %");
  EXPECT_EQ(num(0), "0");
  EXPECT_EQ(num(999), "999");
  EXPECT_EQ(num(2134964), "2 134 964");
}

}  // namespace
