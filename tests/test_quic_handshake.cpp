// End-to-end QUIC handshake tests: ClientConnection <-> ServerConnection
// over a direct loopback, covering the success path and every failure
// mode the paper's Table 3 classifies (version mismatch, crypto error
// 0x128, stall/timeout), plus TLS/transport-parameter extraction.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <deque>

#include "quic/assembler.h"
#include "quic/connection.h"

namespace {

using namespace quic;

tls::Certificate make_cert(const std::string& cn,
                           std::vector<std::string> sans,
                           const std::string& issuer = "Example CA") {
  tls::Certificate cert;
  cert.subject_cn = cn;
  cert.san_dns = std::move(sans);
  cert.issuer_cn = issuer;
  cert.serial = 42;
  cert.not_before_day = 100;
  cert.not_after_day = 190;
  cert.public_key_id = 777;
  std::vector<uint8_t> ca_key{1, 2, 3};
  tls::sign_certificate(cert, ca_key);
  return cert;
}

DeploymentBehavior default_behavior() {
  DeploymentBehavior b;
  b.handshake_versions = {kVersion1, kDraft29};
  b.advertised_versions = {kVersion1, kDraft29};
  b.alpn = {"h3", "h3-29"};
  b.transport_params.initial_max_data = 1048576;
  b.transport_params.initial_max_stream_data_bidi_local = 65536;
  b.transport_params.max_udp_payload_size = 1500;
  auto cert = make_cert("example.com", {"example.com", "*.example.com"});
  b.select_certificate =
      [cert](const std::optional<std::string>&) -> std::optional<tls::Certificate> {
    return cert;
  };
  b.http_responder = [](const std::string&) {
    return "HTTP/1.1 200 OK\r\nserver: testd\r\n\r\n";
  };
  return b;
}

/// Queued loopback harness: datagrams are dispatched from a FIFO pump,
/// never reentrantly, so server sessions can be replaced safely (a new
/// Initial DCID -- version retry or post-Retry -- gets a fresh session,
/// as a real deployment's demultiplexer would provide).
struct Loopback {
  const DeploymentBehavior& behavior;
  uint64_t seed;
  std::unique_ptr<ServerConnection> server;
  ClientConnection* client = nullptr;
  std::vector<uint8_t> session_dcid;
  std::deque<std::pair<bool, std::vector<uint8_t>>> queue;  // to_server?

  explicit Loopback(const DeploymentBehavior& b, uint64_t s)
      : behavior(b), seed(s) {}

  void pump() {
    while (!queue.empty()) {
      auto [to_server, datagram] = std::move(queue.front());
      queue.pop_front();
      if (to_server) {
        auto info = peek_datagram(datagram);
        if (!server || (info && info->long_header &&
                        info->type == PacketType::kInitial &&
                        info->dcid != session_dcid)) {
          if (info) session_dcid = info->dcid;
          server = std::make_unique<ServerConnection>(
              behavior, crypto::Rng(seed + 1),
              [this](std::vector<uint8_t> reply) {
                queue.emplace_back(false, std::move(reply));
              });
        }
        server->on_datagram(datagram);
      } else if (client) {
        client->on_datagram(datagram);
      }
    }
  }
};

/// Runs a handshake over a zero-latency loopback; returns the report.
ClientReport run_handshake(ClientConfig config,
                           const DeploymentBehavior& behavior,
                           uint64_t seed = 1) {
  Loopback loopback(behavior, seed);
  ClientConnection client(
      std::move(config), crypto::Rng(seed),
      [&](std::vector<uint8_t> datagram) {
        loopback.queue.emplace_back(true, std::move(datagram));
      },
      /*done=*/nullptr);
  loopback.client = &client;
  client.start();
  loopback.pump();
  return client.report();
}

TEST(Handshake, SuccessWithSniAndHttp) {
  ClientConfig config;
  config.version = kVersion1;
  config.sni = "www.example.com";
  config.alpn = {"h3"};
  config.http_request = "HEAD / HTTP/1.1\r\nhost: www.example.com\r\n\r\n";
  auto report = run_handshake(config, default_behavior());
  EXPECT_EQ(report.result, ConnectResult::kSuccess);
  EXPECT_EQ(report.negotiated_version, kVersion1);
  EXPECT_TRUE(report.handshake_done_seen);
  ASSERT_TRUE(report.http_response.has_value());
  EXPECT_NE(report.http_response->find("server: testd"), std::string::npos);
}

TEST(Handshake, TlsDetailsExtracted) {
  ClientConfig config;
  config.version = kVersion1;
  config.sni = "www.example.com";
  config.alpn = {"h3"};
  auto report = run_handshake(config, default_behavior());
  ASSERT_EQ(report.result, ConnectResult::kSuccess);
  EXPECT_EQ(report.tls.negotiated_version, tls::kVersion13);
  EXPECT_EQ(report.tls.cipher_suite, tls::CipherSuite::kAes128GcmSha256);
  EXPECT_EQ(report.tls.key_exchange_group,
            static_cast<uint16_t>(tls::NamedGroup::kX25519));
  ASSERT_EQ(report.tls.certificate_chain.size(), 1u);
  EXPECT_EQ(report.tls.certificate_chain[0].subject_cn, "example.com");
  EXPECT_TRUE(report.tls.certificate_chain[0].matches_host("www.example.com"));
  EXPECT_EQ(report.tls.selected_alpn, "h3");
  EXPECT_TRUE(report.tls.sni_echoed);
}

TEST(Handshake, ServerTransportParamsExtracted) {
  ClientConfig config;
  config.version = kVersion1;
  config.sni = "example.com";
  config.alpn = {"h3"};
  auto behavior = default_behavior();
  auto report = run_handshake(config, behavior);
  ASSERT_EQ(report.result, ConnectResult::kSuccess);
  EXPECT_EQ(report.server_transport_params.initial_max_data, 1048576u);
  EXPECT_EQ(report.server_transport_params.max_udp_payload_size, 1500u);
  // Session-specific parameters were set by the server...
  EXPECT_TRUE(
      report.server_transport_params.stateless_reset_token.has_value());
  EXPECT_TRUE(report.server_transport_params.original_destination_connection_id
                  .has_value());
  // ...but the config key matches the behavior's template.
  EXPECT_EQ(report.server_transport_params.config_key(),
            behavior.transport_params.config_key());
}

TEST(Handshake, SuccessOnDraft29UsesDraftCodepointAndSalt) {
  ClientConfig config;
  config.version = kDraft29;
  config.sni = "example.com";
  config.alpn = {"h3-29"};
  auto report = run_handshake(config, default_behavior());
  EXPECT_EQ(report.result, ConnectResult::kSuccess);
  EXPECT_EQ(report.negotiated_version, kDraft29);
  EXPECT_EQ(report.tls.selected_alpn, "h3-29");
}

TEST(Handshake, NoSniRejectedWhenCertificateRequiresIt) {
  auto behavior = default_behavior();
  behavior.handshake_failure_reason = "tls: no application protocol";
  behavior.select_certificate =
      [](const std::optional<std::string>& sni)
      -> std::optional<tls::Certificate> {
    if (!sni) return std::nullopt;  // SNI required
    return make_cert(*sni, {*sni});
  };
  ClientConfig config;
  config.version = kVersion1;
  config.alpn = {"h3"};
  auto report = run_handshake(config, behavior);
  EXPECT_EQ(report.result, ConnectResult::kCryptoError);
  EXPECT_EQ(report.close_error_code, 0x128u);  // the paper's alert
  EXPECT_EQ(report.close_reason, "tls: no application protocol");
}

TEST(Handshake, AlwaysFailureDeployment) {
  auto behavior = default_behavior();
  behavior.always_handshake_failure = true;
  behavior.handshake_failure_reason = "handshake failure";
  ClientConfig config;
  config.version = kVersion1;
  config.sni = "example.com";
  auto report = run_handshake(config, behavior);
  EXPECT_EQ(report.result, ConnectResult::kCryptoError);
  EXPECT_EQ(report.close_error_code, 0x128u);
}

TEST(Handshake, VersionNegotiationRetrySucceeds) {
  auto behavior = default_behavior();
  behavior.handshake_versions = {kDraft29};
  behavior.advertised_versions = {kDraft29, kQ050, kQ046};
  ClientConfig config;
  config.version = kVersion1;  // not supported; server answers VN
  config.compatible_versions = {kVersion1, kDraft34, kDraft32, kDraft29};
  config.sni = "example.com";
  config.alpn = {"h3-29", "h3"};
  auto report = run_handshake(config, behavior);
  EXPECT_EQ(report.result, ConnectResult::kSuccess);
  EXPECT_EQ(report.negotiated_version, kDraft29);
  EXPECT_EQ(report.version_retries, 1);
  EXPECT_EQ(report.peer_versions,
            (std::vector<Version>{kDraft29, kQ050, kQ046}));
}

TEST(Handshake, GoogleStyleVersionMismatch) {
  // The paper's most unexpected error: the server advertises draft-29 in
  // VN but cannot complete a handshake with it (iterative IETF roll-out
  // at Google, section 5). The client offers draft-29, receives VN
  // listing draft-29 -> mismatch.
  auto behavior = default_behavior();
  behavior.handshake_versions = {kQ050, kQ046, kQ043};  // gQUIC only
  behavior.advertised_versions = {kDraft29, kT051, kQ050, kQ046, kQ043};
  ClientConfig config;
  config.version = kDraft29;
  config.compatible_versions = {kDraft29, kDraft32, kDraft34};
  config.sni = "example.com";
  auto report = run_handshake(config, behavior);
  EXPECT_EQ(report.result, ConnectResult::kVersionMismatch);
  EXPECT_EQ(report.peer_versions.size(), 5u);
}

TEST(Handshake, StallYieldsPending) {
  auto behavior = default_behavior();
  behavior.stall_handshake = true;  // middlebox swallows the Initial
  ClientConfig config;
  config.version = kVersion1;
  config.sni = "example.com";
  auto report = run_handshake(config, behavior);
  EXPECT_EQ(report.result, ConnectResult::kPending);  // caller -> timeout
}

TEST(Handshake, NoCommonAlpnFails) {
  auto behavior = default_behavior();
  behavior.alpn = {"h3-27"};
  ClientConfig config;
  config.version = kVersion1;
  config.sni = "example.com";
  config.alpn = {"h3"};
  auto report = run_handshake(config, behavior);
  EXPECT_EQ(report.result, ConnectResult::kCryptoError);
  EXPECT_EQ(report.close_error_code,
            crypto_error(static_cast<uint8_t>(
                tls::AlertDescription::kNoApplicationProtocol)));
}

TEST(Handshake, CertificateSelectionBySni) {
  auto cert_a = make_cert("a.example", {"a.example"});
  auto cert_b = make_cert("b.example", {"b.example"});
  auto behavior = default_behavior();
  behavior.select_certificate =
      [&](const std::optional<std::string>& sni)
      -> std::optional<tls::Certificate> {
    if (sni == "a.example") return cert_a;
    if (sni == "b.example") return cert_b;
    return std::nullopt;
  };
  ClientConfig config;
  config.version = kVersion1;
  config.alpn = {"h3"};
  config.sni = "b.example";
  auto report = run_handshake(config, behavior);
  ASSERT_EQ(report.result, ConnectResult::kSuccess);
  ASSERT_EQ(report.tls.certificate_chain.size(), 1u);
  EXPECT_EQ(report.tls.certificate_chain[0].subject_cn, "b.example");
}

TEST(Handshake, SuccessWithoutSniWhenDefaultCertExists) {
  ClientConfig config;
  config.version = kVersion1;
  config.alpn = {"h3"};
  auto report = run_handshake(config, default_behavior());
  EXPECT_EQ(report.result, ConnectResult::kSuccess);
  EXPECT_FALSE(report.tls.sni_echoed);
}

class HandshakeVersionMatrix : public ::testing::TestWithParam<Version> {};

TEST_P(HandshakeVersionMatrix, FullHandshakePerVersion) {
  auto behavior = default_behavior();
  behavior.handshake_versions = {GetParam()};
  behavior.advertised_versions = {GetParam()};
  behavior.alpn = {"h3", "h3-29", "h3-32", "h3-34", "h3-27", "h3-28"};
  ClientConfig config;
  config.version = GetParam();
  config.sni = "example.com";
  config.alpn = {"h3", "h3-29", "h3-32", "h3-34", "h3-27", "h3-28"};
  auto report = run_handshake(config, behavior);
  EXPECT_EQ(report.result, ConnectResult::kSuccess)
      << version_name(GetParam());
}

INSTANTIATE_TEST_SUITE_P(AllIetfVersions, HandshakeVersionMatrix,
                         ::testing::Values(kVersion1, kDraft29, kDraft32,
                                           kDraft34, kDraft28, kDraft27));

TEST(Handshake, DistinctSeedsDistinctConnectionIds) {
  // Determinism check: same seed -> same wire bytes; different seed ->
  // different DCIDs (and so different Initial keys).
  std::vector<uint8_t> first_a, first_b, first_c;
  auto capture = [](std::vector<uint8_t>& out) {
    return [&out](std::vector<uint8_t> d) {
      if (out.empty()) out = std::move(d);
    };
  };
  ClientConfig config;
  config.version = kVersion1;
  ClientConnection a(config, crypto::Rng(5), capture(first_a), nullptr);
  ClientConnection b(config, crypto::Rng(5), capture(first_b), nullptr);
  ClientConnection c(config, crypto::Rng(6), capture(first_c), nullptr);
  a.start();
  b.start();
  c.start();
  EXPECT_EQ(first_a, first_b);
  EXPECT_NE(first_a, first_c);
}

TEST(Handshake, RetryAddressValidation) {
  auto behavior = default_behavior();
  behavior.require_retry = true;
  ClientConfig config;
  config.version = kVersion1;
  config.sni = "www.example.com";
  config.alpn = {"h3"};
  config.http_request = "HEAD / HTTP/1.1\r\n\r\n";
  auto report = run_handshake(config, behavior);
  EXPECT_EQ(report.result, ConnectResult::kSuccess);
  EXPECT_TRUE(report.retry_used);
  // RFC 9000 section 7.3: the server authenticates the Retry exchange
  // in its transport parameters.
  EXPECT_TRUE(
      report.server_transport_params.retry_source_connection_id.has_value());
  EXPECT_TRUE(report.server_transport_params.original_destination_connection_id
                  .has_value());
}

TEST(Handshake, RetryOnDraft29UsesDraftIntegrityKeys) {
  auto behavior = default_behavior();
  behavior.require_retry = true;
  behavior.handshake_versions = {kDraft29};
  behavior.advertised_versions = {kDraft29};
  ClientConfig config;
  config.version = kDraft29;
  config.sni = "example.com";
  config.alpn = {"h3-29"};
  auto report = run_handshake(config, behavior);
  EXPECT_EQ(report.result, ConnectResult::kSuccess);
  EXPECT_TRUE(report.retry_used);
}

TEST(Retry, EncodeDecodeRoundTripAndTamperRejection) {
  RetryPacket retry;
  retry.version = kVersion1;
  retry.dcid = {1, 2, 3, 4};
  retry.scid = {5, 6, 7, 8, 9, 10, 11, 12};
  retry.token = {'r', 't', 0xaa, 0xbb};
  std::vector<uint8_t> odcid{9, 9, 9, 9, 9, 9, 9, 9};
  auto bytes = encode_retry(retry, odcid);
  auto decoded = decode_retry(bytes, odcid);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->scid, retry.scid);
  EXPECT_EQ(decoded->token, retry.token);
  // Wrong ODCID -> integrity check fails (off-path spoofing defense).
  std::vector<uint8_t> wrong_odcid{1, 1, 1, 1};
  EXPECT_FALSE(decode_retry(bytes, wrong_odcid).has_value());
  // Flipped token byte -> rejected.
  auto tampered = bytes;
  tampered[10] ^= 1;
  EXPECT_FALSE(decode_retry(tampered, odcid).has_value());
}

TEST(Handshake, SecondRetryIgnored) {
  // A client accepts at most one Retry; a duplicated Retry must not
  // reset connection state (RFC 9000 section 17.2.5.2).
  auto behavior = default_behavior();
  behavior.require_retry = true;
  ClientConfig config;
  config.version = kVersion1;
  config.sni = "example.com";
  config.alpn = {"h3"};
  Loopback loopback(behavior, 77);
  int retries_seen = 0;
  ClientConnection client(
      config, crypto::Rng(77),
      [&](std::vector<uint8_t> datagram) {
        loopback.queue.emplace_back(true, std::move(datagram));
      },
      nullptr);
  loopback.client = &client;
  client.start();
  // Pump manually so Retry packets can be duplicated in flight.
  while (!loopback.queue.empty()) {
    auto [to_server, datagram] = std::move(loopback.queue.front());
    loopback.queue.pop_front();
    if (to_server) {
      auto info = peek_datagram(datagram);
      if (!loopback.server ||
          (info && info->long_header &&
           info->type == PacketType::kInitial &&
           info->dcid != loopback.session_dcid)) {
        if (info) loopback.session_dcid = info->dcid;
        loopback.server = std::make_unique<ServerConnection>(
            behavior, crypto::Rng(78), [&](std::vector<uint8_t> reply) {
              auto rinfo = peek_datagram(reply);
              if (rinfo && rinfo->type == PacketType::kRetry) {
                ++retries_seen;
                loopback.queue.emplace_back(false, reply);  // duplicate
              }
              loopback.queue.emplace_back(false, std::move(reply));
            });
      }
      loopback.server->on_datagram(datagram);
    } else {
      client.on_datagram(datagram);
    }
  }
  EXPECT_EQ(retries_seen, 1);
  EXPECT_EQ(client.report().result, ConnectResult::kSuccess);
  EXPECT_TRUE(client.report().retry_used);
}

TEST(Handshake, VersionInformationAdvertisedAndValidated) {
  ClientConfig config;
  config.version = kVersion1;
  config.sni = "example.com";
  config.alpn = {"h3"};
  auto report = run_handshake(config, default_behavior());
  ASSERT_EQ(report.result, ConnectResult::kSuccess);
  const auto& info = report.server_transport_params.version_information;
  ASSERT_TRUE(info.has_value());
  EXPECT_EQ(info->chosen, kVersion1);
  EXPECT_EQ(info->available, (std::vector<uint32_t>{kVersion1, kDraft29}));
}

std::vector<uint8_t> bytes_of(const char* text) {
  return {reinterpret_cast<const uint8_t*>(text),
          reinterpret_cast<const uint8_t*>(text) + std::strlen(text)};
}

TEST(CryptoAssembler, InOrderAppends) {
  CryptoAssembler assembler;
  EXPECT_TRUE(assembler.offer(0, bytes_of("ab")));
  EXPECT_TRUE(assembler.offer(2, bytes_of("cd")));
  EXPECT_EQ(assembler.assembled(), bytes_of("abcd"));
  EXPECT_EQ(assembler.pending_chunks(), 0u);
}

TEST(CryptoAssembler, OutOfOrderStashesUntilGapCloses) {
  CryptoAssembler assembler;
  EXPECT_FALSE(assembler.offer(2, bytes_of("cd")));
  EXPECT_EQ(assembler.pending_chunks(), 1u);
  EXPECT_EQ(assembler.pending_bytes(), 2u);
  EXPECT_TRUE(assembler.assembled().empty());
  EXPECT_TRUE(assembler.offer(0, bytes_of("ab")));
  EXPECT_EQ(assembler.assembled(), bytes_of("abcd"));
  EXPECT_EQ(assembler.pending_chunks(), 0u);
}

TEST(CryptoAssembler, FullyReversedChunksReassemble) {
  CryptoAssembler assembler;
  EXPECT_FALSE(assembler.offer(4, bytes_of("ef")));
  EXPECT_FALSE(assembler.offer(2, bytes_of("cd")));
  EXPECT_EQ(assembler.pending_chunks(), 2u);
  EXPECT_TRUE(assembler.offer(0, bytes_of("ab")));
  EXPECT_EQ(assembler.assembled(), bytes_of("abcdef"));
  EXPECT_EQ(assembler.pending_chunks(), 0u);
}

TEST(CryptoAssembler, DuplicatesAndStaleRetransmitsIgnored) {
  CryptoAssembler assembler;
  EXPECT_TRUE(assembler.offer(0, bytes_of("abc")));
  EXPECT_FALSE(assembler.offer(0, bytes_of("abc")));  // exact dup
  EXPECT_FALSE(assembler.offer(1, bytes_of("b")));    // stale inner
  EXPECT_EQ(assembler.assembled(), bytes_of("abc"));
}

TEST(CryptoAssembler, OverlappingChunkTrimmedToNewTail) {
  CryptoAssembler assembler;
  EXPECT_TRUE(assembler.offer(0, bytes_of("abcd")));
  EXPECT_TRUE(assembler.offer(2, bytes_of("cdef")));
  EXPECT_EQ(assembler.assembled(), bytes_of("abcdef"));
}

TEST(CryptoAssembler, SameOffsetKeepsLongerPendingChunk) {
  CryptoAssembler assembler;
  EXPECT_FALSE(assembler.offer(2, bytes_of("cd")));
  EXPECT_FALSE(assembler.offer(2, bytes_of("cdef")));
  EXPECT_EQ(assembler.pending_chunks(), 1u);
  EXPECT_TRUE(assembler.offer(0, bytes_of("ab")));
  EXPECT_EQ(assembler.assembled(), bytes_of("abcdef"));
}

TEST(CryptoAssembler, ClearResetsEverything) {
  CryptoAssembler assembler;
  assembler.offer(3, bytes_of("xyz"));
  assembler.offer(0, bytes_of("abc"));
  assembler.clear();
  EXPECT_TRUE(assembler.assembled().empty());
  EXPECT_EQ(assembler.pending_chunks(), 0u);
  EXPECT_TRUE(assembler.offer(0, bytes_of("fresh")));
  EXPECT_EQ(assembler.assembled(), bytes_of("fresh"));
}

TEST(Handshake, SplitFlightInOrderStillSucceeds) {
  // max_crypto_chunk > 0 makes the server ship EE..Finished as several
  // single-packet datagrams instead of one coalesced flight; delivered
  // in order this must be invisible to the client. 80 bytes splits the
  // ~270-byte synthetic flight into four Handshake datagrams.
  auto behavior = default_behavior();
  behavior.max_crypto_chunk = 80;
  ClientConfig config;
  config.version = kVersion1;
  config.sni = "www.example.com";
  config.alpn = {"h3"};
  config.http_request = "HEAD / HTTP/1.1\r\nhost: www.example.com\r\n\r\n";
  auto report = run_handshake(config, behavior);
  EXPECT_EQ(report.result, ConnectResult::kSuccess);
  ASSERT_TRUE(report.http_response.has_value());
}

TEST(Handshake, OutOfOrderCryptoReassembledAcrossDatagrams) {
  // The fabric's reordering regression: the server's split Handshake
  // flight arrives back to front. The client must stash the tail
  // chunks and finish once the gap closes -- the silent-skip that shipped
  // before the assembler turned this exact delivery into a timeout.
  auto behavior = default_behavior();
  behavior.max_crypto_chunk = 80;
  ClientConfig config;
  config.version = kVersion1;
  config.sni = "www.example.com";
  config.alpn = {"h3"};
  Loopback loopback(behavior, 91);
  ClientConnection client(
      config, crypto::Rng(91),
      [&](std::vector<uint8_t> datagram) {
        loopback.queue.emplace_back(true, std::move(datagram));
      },
      nullptr);
  loopback.client = &client;
  client.start();

  auto is_handshake_packet = [](const std::vector<uint8_t>& datagram) {
    auto info = peek_datagram(datagram);
    return info && info->long_header &&
           info->type == PacketType::kHandshake;
  };
  int reversed_flights = 0;
  while (!loopback.queue.empty()) {
    std::vector<std::vector<uint8_t>> to_server, to_client;
    while (!loopback.queue.empty()) {
      auto [server_bound, datagram] = std::move(loopback.queue.front());
      loopback.queue.pop_front();
      (server_bound ? to_server : to_client).push_back(std::move(datagram));
    }
    for (auto& datagram : to_server) {
      auto info = peek_datagram(datagram);
      if (!loopback.server ||
          (info && info->long_header &&
           info->type == PacketType::kInitial &&
           info->dcid != loopback.session_dcid)) {
        if (info) loopback.session_dcid = info->dcid;
        loopback.server = std::make_unique<ServerConnection>(
            behavior, crypto::Rng(92), [&](std::vector<uint8_t> reply) {
              loopback.queue.emplace_back(false, std::move(reply));
            });
      }
      loopback.server->on_datagram(datagram);
    }
    // Reverse the run of Handshake-packet datagrams inside the flight
    // (the Initial must still land first: it carries the ServerHello
    // that yields the handshake keys).
    auto first =
        std::find_if(to_client.begin(), to_client.end(), is_handshake_packet);
    auto last = std::find_if(first, to_client.end(),
                             [&](const std::vector<uint8_t>& datagram) {
                               return !is_handshake_packet(datagram);
                             });
    if (std::distance(first, last) > 1) {
      std::reverse(first, last);
      ++reversed_flights;
    }
    for (auto& datagram : to_client) client.on_datagram(datagram);
  }
  // The flight really was split and really was reversed.
  EXPECT_GE(reversed_flights, 1);
  EXPECT_EQ(client.report().result, ConnectResult::kSuccess);
  EXPECT_EQ(client.hotpath_stats().undecryptable, 0u);
}

TEST(Handshake, UndecryptableDatagramCountedNotFatal) {
  // A corrupted copy of the server's first flight arrives before the
  // genuine one: AEAD open fails, the attempt records it and carries
  // on (impairment-correctness: corruption must never abort a scan).
  auto behavior = default_behavior();
  ClientConfig config;
  config.version = kVersion1;
  config.sni = "example.com";
  config.alpn = {"h3"};
  Loopback loopback(behavior, 55);
  ClientConnection client(
      config, crypto::Rng(55),
      [&](std::vector<uint8_t> datagram) {
        loopback.queue.emplace_back(true, std::move(datagram));
      },
      nullptr);
  loopback.client = &client;
  client.start();
  bool corrupted_once = false;
  while (!loopback.queue.empty()) {
    auto [to_server, datagram] = std::move(loopback.queue.front());
    loopback.queue.pop_front();
    if (to_server) {
      auto info = peek_datagram(datagram);
      if (!loopback.server ||
          (info && info->long_header &&
           info->type == PacketType::kInitial &&
           info->dcid != loopback.session_dcid)) {
        if (info) loopback.session_dcid = info->dcid;
        loopback.server = std::make_unique<ServerConnection>(
            behavior, crypto::Rng(56), [&](std::vector<uint8_t> reply) {
              loopback.queue.emplace_back(false, std::move(reply));
            });
      }
      loopback.server->on_datagram(datagram);
    } else {
      if (!corrupted_once) {
        corrupted_once = true;
        auto mangled = datagram;
        mangled.back() ^= 0x01;  // breaks the AEAD tag
        client.on_datagram(mangled);
        EXPECT_EQ(client.hotpath_stats().undecryptable, 1u);
      }
      client.on_datagram(datagram);
    }
  }
  EXPECT_TRUE(corrupted_once);
  EXPECT_EQ(client.report().result, ConnectResult::kSuccess);
  EXPECT_EQ(client.hotpath_stats().undecryptable, 1u);
}

TEST(TransportParams, VersionInformationRoundTrip) {
  TransportParameters tp;
  TransportParameters::VersionInformation info;
  info.chosen = kVersion1;
  info.available = {kVersion1, kDraft29, kDraft27};
  tp.version_information = info;
  auto decoded = decode_transport_parameters(encode_transport_parameters(tp));
  ASSERT_TRUE(decoded.version_information.has_value());
  EXPECT_EQ(*decoded.version_information, info);
  // Not part of the configuration key (it mirrors the version set, not
  // the performance configuration).
  TransportParameters other;
  EXPECT_EQ(tp.config_key(), other.config_key());
}

}  // namespace
