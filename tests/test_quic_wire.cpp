// QUIC wire-format tests: version registry, transport-parameter codec,
// frames, packets, version negotiation and RFC 9001 Initial protection.
#include <gtest/gtest.h>

#include "crypto/rng.h"
#include "quic/frame.h"
#include "quic/packet.h"
#include "quic/transport_params.h"
#include "quic/version.h"
#include "wire/buffer.h"

namespace {

using namespace quic;

TEST(Version, Names) {
  EXPECT_EQ(version_name(kVersion1), "ietf-01");
  EXPECT_EQ(version_name(kDraft29), "draft-29");
  EXPECT_EQ(version_name(kDraft27), "draft-27");
  EXPECT_EQ(version_name(kQ050), "Q050");
  EXPECT_EQ(version_name(kT051), "T051");
  EXPECT_EQ(version_name(kMvfst2), "mvfst-2");
  EXPECT_EQ(version_name(kMvfstE), "mvfst-e");
  EXPECT_EQ(version_name(0xdeadbeef), "0xdeadbeef");
}

TEST(Version, WireValues) {
  EXPECT_EQ(kDraft29, 0xff00001du);
  EXPECT_EQ(kQ043, 0x51303433u);
  EXPECT_EQ(kT051, 0x54303531u);
  EXPECT_EQ(kVersion1, 0x00000001u);
}

TEST(Version, NameRoundTrip) {
  for (Version v : {kVersion1, kDraft27, kDraft28, kDraft29, kDraft32, kDraft34,
                    kQ039, kQ043, kQ046, kQ048, kQ050, kQ099, kT048, kT051,
                    kMvfst1, kMvfst2, kMvfstE}) {
    auto name = version_name(v);
    auto back = version_from_name(name);
    ASSERT_TRUE(back.has_value()) << name;
    EXPECT_EQ(*back, v) << name;
  }
}

TEST(Version, Classification) {
  EXPECT_TRUE(is_ietf(kVersion1));
  EXPECT_TRUE(is_ietf(kDraft29));
  EXPECT_FALSE(is_ietf(kQ050));
  EXPECT_TRUE(is_google(kQ050));
  EXPECT_TRUE(is_google(kT051));
  EXPECT_FALSE(is_google(kMvfst1));
  EXPECT_TRUE(is_mvfst(kMvfstE));
  EXPECT_TRUE(is_force_negotiation(0x1a2a3a4a));
  EXPECT_TRUE(is_force_negotiation(0xfafafafa));
  EXPECT_FALSE(is_force_negotiation(kVersion1));
  EXPECT_FALSE(is_force_negotiation(kDraft29));
}

TEST(Version, SetNameMatchesPaperOrdering) {
  EXPECT_EQ(version_set_name({kQ043, kDraft29, kQ046, kQ050, kT051}),
            "draft-29 T051 Q050 Q046 Q043");
  EXPECT_EQ(version_set_name({kDraft27, kDraft28, kDraft29, kVersion1}),
            "ietf-01 draft-29 draft-28 draft-27");
  EXPECT_EQ(version_set_name({kDraft27, kMvfst1, kMvfst2, kDraft29, kMvfstE}),
            "mvfst-2 mvfst-1 mvfst-e draft-29 draft-27");
}

TEST(TransportParams, EmptyRoundTrip) {
  TransportParameters tp;
  auto decoded = decode_transport_parameters(encode_transport_parameters(tp));
  EXPECT_EQ(decoded, tp);
}

TEST(TransportParams, FullRoundTrip) {
  TransportParameters tp;
  tp.max_idle_timeout = 30000;
  tp.max_udp_payload_size = 1500;
  tp.initial_max_data = 1048576;
  tp.initial_max_stream_data_bidi_local = 66560;
  tp.initial_max_stream_data_bidi_remote = 66560;
  tp.initial_max_stream_data_uni = 66560;
  tp.initial_max_streams_bidi = 100;
  tp.initial_max_streams_uni = 3;
  tp.ack_delay_exponent = 3;
  tp.max_ack_delay = 25;
  tp.active_connection_id_limit = 4;
  tp.disable_active_migration = true;
  tp.original_destination_connection_id =
      std::vector<uint8_t>{1, 2, 3, 4, 5, 6, 7, 8};
  tp.initial_source_connection_id = std::vector<uint8_t>{9, 10, 11, 12};
  tp.stateless_reset_token = std::vector<uint8_t>(16, 0xab);
  auto decoded = decode_transport_parameters(encode_transport_parameters(tp));
  EXPECT_EQ(decoded, tp);
}

TEST(TransportParams, UnknownAndGreasePreserved) {
  TransportParameters tp;
  tp.unknown.emplace_back(0x4a5a, std::vector<uint8_t>{0xde, 0xad});
  auto decoded = decode_transport_parameters(encode_transport_parameters(tp));
  EXPECT_EQ(decoded.unknown, tp.unknown);
}

TEST(TransportParams, RejectsDuplicates) {
  wire::Writer w;
  w.varint(0x01);
  w.varint(1);
  w.varint(5);
  w.varint(0x01);
  w.varint(1);
  w.varint(6);
  EXPECT_THROW(decode_transport_parameters(w.span()), wire::DecodeError);
}

TEST(TransportParams, RejectsInvalidValues) {
  auto encode_one = [](uint64_t id, uint64_t value) {
    wire::Writer w;
    w.varint(id);
    w.varint(wire::varint_size(value));
    w.varint(value);
    return std::vector<uint8_t>(w.span().begin(), w.span().end());
  };
  // max_udp_payload_size < 1200
  EXPECT_THROW(decode_transport_parameters(encode_one(0x03, 1199)),
               wire::DecodeError);
  // ack_delay_exponent > 20
  EXPECT_THROW(decode_transport_parameters(encode_one(0x0a, 21)),
               wire::DecodeError);
  // active_connection_id_limit < 2
  EXPECT_THROW(decode_transport_parameters(encode_one(0x0e, 1)),
               wire::DecodeError);
  // max_ack_delay >= 2^14
  EXPECT_THROW(decode_transport_parameters(encode_one(0x0b, 1 << 14)),
               wire::DecodeError);
}

TEST(TransportParams, ConfigKeyIgnoresSessionSpecificValues) {
  TransportParameters a, b;
  a.initial_max_data = 1048576;
  b.initial_max_data = 1048576;
  a.initial_source_connection_id = std::vector<uint8_t>{1, 2, 3};
  b.initial_source_connection_id = std::vector<uint8_t>{4, 5, 6};
  a.stateless_reset_token = std::vector<uint8_t>(16, 1);
  b.stateless_reset_token = std::vector<uint8_t>(16, 2);
  EXPECT_EQ(a.config_key(), b.config_key());
  b.initial_max_data = 8192;
  EXPECT_NE(a.config_key(), b.config_key());
}

TEST(TransportParams, DefaultsApplied) {
  TransportParameters tp;
  EXPECT_EQ(tp.effective_max_udp_payload_size(), 65527u);
  EXPECT_EQ(tp.effective_ack_delay_exponent(), 3u);
  EXPECT_EQ(tp.effective_max_ack_delay(), 25u);
  EXPECT_EQ(tp.effective_active_connection_id_limit(), 2u);
  tp.max_udp_payload_size = 1500;
  EXPECT_EQ(tp.effective_max_udp_payload_size(), 1500u);
}

TEST(Frames, RoundTripEachType) {
  std::vector<Frame> frames{
      PingFrame{},
      AckFrame{42, 10, 2, {{1, 3}, {0, 1}}},
      CryptoFrame{0, {1, 2, 3, 4}},
      StreamFrame{4, 100, true, {9, 9, 9}},
      ConnectionCloseFrame{0x128, false, 0x06, "handshake failure"},
      ConnectionCloseFrame{7, true, 0, "app close"},
      HandshakeDoneFrame{},
      PaddingFrame{17},
  };
  auto decoded = decode_frames(encode_frames(frames));
  ASSERT_EQ(decoded.size(), frames.size());
  for (size_t i = 0; i < frames.size(); ++i)
    EXPECT_EQ(decoded[i], frames[i]) << "frame " << i;
}

TEST(Frames, PaddingRunsCollapse) {
  wire::Writer w;
  w.zeros(100);
  auto frames = decode_frames(w.span());
  ASSERT_EQ(frames.size(), 1u);
  EXPECT_EQ(std::get<PaddingFrame>(frames[0]).length, 100u);
}

TEST(Frames, UnknownTypeThrows) {
  wire::Writer w;
  w.varint(0x42);  // MAX_DATA, not implemented
  w.varint(100);
  EXPECT_THROW(decode_frames(w.span()), wire::DecodeError);
}

TEST(Frames, ReassembleCryptoInOrder) {
  std::vector<Frame> frames{CryptoFrame{4, {5, 6, 7}}, CryptoFrame{0, {1, 2, 3, 4}}};
  auto data = reassemble_crypto(frames);
  EXPECT_EQ(data, (std::vector<uint8_t>{1, 2, 3, 4, 5, 6, 7}));
}

TEST(Frames, ReassembleCryptoRejectsGaps) {
  std::vector<Frame> frames{CryptoFrame{5, {1}}};
  EXPECT_THROW(reassemble_crypto(frames), wire::DecodeError);
}

TEST(VersionNegotiation, RoundTrip) {
  VersionNegotiationPacket vn;
  vn.dcid = {1, 2, 3, 4};
  vn.scid = {5, 6, 7, 8, 9, 10, 11, 12};
  vn.supported_versions = {kDraft29, kDraft28, kDraft27, kQ050};
  auto bytes = encode_version_negotiation(vn, 0x55);
  auto decoded = decode_version_negotiation(bytes);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->dcid, vn.dcid);
  EXPECT_EQ(decoded->scid, vn.scid);
  EXPECT_EQ(decoded->supported_versions, vn.supported_versions);
}

TEST(VersionNegotiation, PeekClassifiesAsVn) {
  VersionNegotiationPacket vn;
  vn.dcid = {1};
  vn.scid = {2};
  vn.supported_versions = {kVersion1};
  auto bytes = encode_version_negotiation(vn, 0);
  auto info = peek_datagram(bytes);
  ASSERT_TRUE(info.has_value());
  EXPECT_TRUE(info->long_header);
  EXPECT_EQ(info->type, PacketType::kVersionNegotiation);
  EXPECT_EQ(info->version, 0u);
}

TEST(VersionNegotiation, RejectsEmptyVersionList) {
  wire::Writer w;
  w.u8(0x80);
  w.u32(0);
  w.u8(0);
  w.u8(0);
  EXPECT_FALSE(decode_version_negotiation(w.span()).has_value());
}

TEST(InitialSalt, VersionSpecific) {
  EXPECT_EQ(wire::to_hex(initial_salt(kVersion1)),
            "38762cf7f55934b34d179ae6a4c80cadccbb7f0a");
  EXPECT_EQ(wire::to_hex(initial_salt(kDraft29)),
            "afbfec289993d24c9e9786f19c6111e04390a899");
  EXPECT_EQ(wire::to_hex(initial_salt(kDraft32)),
            "afbfec289993d24c9e9786f19c6111e04390a899");
  EXPECT_EQ(wire::to_hex(initial_salt(kDraft27)),
            "c3eef712c72ebb5a11a7d2432bb46365bef9f502");
  EXPECT_EQ(wire::to_hex(initial_salt(kDraft34)),
            "38762cf7f55934b34d179ae6a4c80cadccbb7f0a");
}

TEST(InitialSecrets, MatchRfc9001AppendixA) {
  auto dcid = wire::from_hex("8394c8f03e515708");
  auto secrets = derive_initial_secrets(kVersion1, dcid);
  EXPECT_EQ(wire::to_hex(secrets.client),
            "c00cf151ca5be075ed0ebfb5c80323c42d6b7db67881289af4008f1f6c357aea");
  EXPECT_EQ(wire::to_hex(secrets.server),
            "3c199828fd139efd216c155ad844cc81fb82fa8d7446fa7d78be803acdda951b");
}

class PacketProtectionTest : public ::testing::TestWithParam<Version> {};

TEST_P(PacketProtectionTest, InitialProtectUnprotectRoundTrip) {
  Version version = GetParam();
  crypto::Rng rng(1234);
  auto dcid = rng.bytes(8);

  Packet packet;
  packet.type = PacketType::kInitial;
  packet.version = version;
  packet.dcid = dcid;
  packet.scid = rng.bytes(8);
  packet.packet_number = 3;
  packet.payload = encode_frames({CryptoFrame{0, rng.bytes(300)},
                                  PaddingFrame{900}});

  auto tx = PacketProtector::for_initial(version, dcid, false);
  auto rx = PacketProtector::for_initial(version, dcid, false);
  auto wire_bytes = tx.protect(packet);
  EXPECT_GE(wire_bytes.size(), 1200u);

  size_t offset = 0;
  auto opened = rx.unprotect(wire_bytes, offset);
  ASSERT_TRUE(opened.has_value());
  EXPECT_EQ(offset, wire_bytes.size());
  EXPECT_EQ(opened->type, PacketType::kInitial);
  EXPECT_EQ(opened->version, version);
  EXPECT_EQ(opened->dcid, packet.dcid);
  EXPECT_EQ(opened->scid, packet.scid);
  EXPECT_EQ(opened->packet_number, packet.packet_number);
  EXPECT_EQ(opened->payload, packet.payload);
}

INSTANTIATE_TEST_SUITE_P(Versions, PacketProtectionTest,
                         ::testing::Values(kVersion1, kDraft29, kDraft32,
                                           kDraft34, kDraft27, kDraft28));

TEST(PacketProtection, WrongVersionSaltCannotUnprotect) {
  crypto::Rng rng(99);
  auto dcid = rng.bytes(8);
  Packet packet;
  packet.type = PacketType::kInitial;
  packet.version = kDraft29;
  packet.dcid = dcid;
  packet.scid = rng.bytes(8);
  packet.packet_number = 0;
  packet.payload = encode_frames({CryptoFrame{0, rng.bytes(100)},
                                  PaddingFrame{1100}});
  auto tx = PacketProtector::for_initial(kDraft29, dcid, false);
  auto bytes = tx.protect(packet);
  // draft-27 uses a different salt; keys differ, authentication fails.
  auto rx_wrong = PacketProtector::for_initial(kDraft27, dcid, false);
  size_t offset = 0;
  EXPECT_FALSE(rx_wrong.unprotect(bytes, offset).has_value());
}

TEST(PacketProtection, ClientServerKeysDiffer) {
  crypto::Rng rng(7);
  auto dcid = rng.bytes(8);
  Packet packet;
  packet.type = PacketType::kInitial;
  packet.version = kVersion1;
  packet.dcid = dcid;
  packet.scid = {};
  packet.packet_number = 0;
  packet.payload = encode_frames({PaddingFrame{1200}});
  auto client = PacketProtector::for_initial(kVersion1, dcid, false);
  auto server = PacketProtector::for_initial(kVersion1, dcid, true);
  auto bytes = client.protect(packet);
  size_t offset = 0;
  EXPECT_FALSE(server.unprotect(bytes, offset).has_value());
  offset = 0;
  EXPECT_TRUE(client.unprotect(bytes, offset).has_value());
}

TEST(PacketProtection, TrialDecryptUseCountIsKeyIndependent) {
  // A trial decrypt of an undecryptable datagram must cost exactly one
  // AEAD-context use no matter which keys the protector holds: the
  // masked pn-length and tag checks depend on key material (i.e. on
  // per-connection entropy), so counting uses only past them would make
  // the campaign's merged hotpath.aead_ctx_reuse counter depend on how
  // targets were partitioned across shards. Adversarial garbage bursts
  // made exactly that happen before the use was noted at the header-
  // protection step.
  crypto::Rng noise_rng(0x6761);
  auto garbage = noise_rng.bytes(64);
  garbage[0] = 0x40 | (garbage[0] & 0x3f);  // plausible short header
  for (uint64_t seed : {1u, 2u, 3u, 4u, 5u, 6u, 7u, 8u}) {
    crypto::Rng rng(seed);
    auto dcid = rng.bytes(8);
    auto protector = PacketProtector::for_initial(kVersion1, dcid, false);
    HotpathStats stats;
    protector.set_stats(&stats);
    // Prime the context so the garbage decrypt below is a "reuse".
    Packet prime;
    prime.type = PacketType::kInitial;
    prime.version = kVersion1;
    prime.dcid = dcid;
    prime.packet_number = 0;
    prime.payload = encode_frames({PaddingFrame{1200}});
    protector.protect(prime);
    size_t offset = 0;
    EXPECT_FALSE(protector.unprotect(garbage, offset).has_value());
    EXPECT_EQ(stats.aead_ctx_reuse, 1u) << "seed " << seed;
  }
}

TEST(PacketProtection, TamperingDetected) {
  crypto::Rng rng(8);
  auto dcid = rng.bytes(8);
  Packet packet;
  packet.type = PacketType::kInitial;
  packet.version = kVersion1;
  packet.dcid = dcid;
  packet.scid = rng.bytes(8);
  packet.packet_number = 1;
  packet.payload = encode_frames({CryptoFrame{0, rng.bytes(64)},
                                  PaddingFrame{1100}});
  auto prot = PacketProtector::for_initial(kVersion1, dcid, false);
  auto bytes = prot.protect(packet);
  bytes[bytes.size() / 2] ^= 0x40;
  size_t offset = 0;
  EXPECT_FALSE(prot.unprotect(bytes, offset).has_value());
}

TEST(PacketProtection, CoalescedDatagram) {
  crypto::Rng rng(9);
  auto dcid = rng.bytes(8);
  auto initial_keys = derive_initial_secrets(kVersion1, dcid);
  PacketProtector initial(tls::derive_traffic_keys(initial_keys.client,
                                                   tls::KeyUsage::kQuic));
  auto hs_secret = rng.bytes(32);
  PacketProtector handshake(
      tls::derive_traffic_keys(hs_secret, tls::KeyUsage::kQuic));

  Packet p1;
  p1.type = PacketType::kInitial;
  p1.version = kVersion1;
  p1.dcid = dcid;
  p1.scid = rng.bytes(8);
  p1.packet_number = 0;
  p1.payload = encode_frames({CryptoFrame{0, rng.bytes(50)}, PaddingFrame{40}});
  Packet p2;
  p2.type = PacketType::kHandshake;
  p2.version = kVersion1;
  p2.dcid = dcid;
  p2.scid = p1.scid;
  p2.packet_number = 0;
  p2.payload = encode_frames({CryptoFrame{0, rng.bytes(200)}});

  auto datagram = initial.protect(p1);
  auto hs_bytes = handshake.protect(p2);
  datagram.insert(datagram.end(), hs_bytes.begin(), hs_bytes.end());

  size_t offset = 0;
  auto first = initial.unprotect(datagram, offset);
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(first->type, PacketType::kInitial);
  auto second = handshake.unprotect(datagram, offset);
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(second->type, PacketType::kHandshake);
  EXPECT_EQ(offset, datagram.size());
}

TEST(PacketProtection, OneRttShortHeader) {
  crypto::Rng rng(10);
  auto secret = rng.bytes(32);
  PacketProtector prot(tls::derive_traffic_keys(secret, tls::KeyUsage::kQuic));
  Packet p;
  p.type = PacketType::kOneRtt;
  p.dcid = rng.bytes(8);
  p.packet_number = 17;
  p.payload = encode_frames({StreamFrame{0, 0, true, rng.bytes(100)}});
  auto bytes = prot.protect(p);
  EXPECT_EQ(bytes[0] & 0x80, 0);  // short header
  size_t offset = 0;
  auto opened = prot.unprotect(bytes, offset);
  ASSERT_TRUE(opened.has_value());
  EXPECT_EQ(opened->type, PacketType::kOneRtt);
  EXPECT_EQ(opened->dcid, p.dcid);
  EXPECT_EQ(opened->packet_number, 17u);
  EXPECT_EQ(opened->payload, p.payload);
}

TEST(Peek, MalformedDatagramsRejected) {
  EXPECT_FALSE(peek_datagram({}).has_value());
  std::vector<uint8_t> junk{0xc3};  // long header, truncated
  EXPECT_FALSE(peek_datagram(junk).has_value());
}

TEST(PacketProtection, InitialWithTokenRoundTrip) {
  crypto::Rng rng(77);
  auto dcid = rng.bytes(8);
  Packet packet;
  packet.type = PacketType::kInitial;
  packet.version = kVersion1;
  packet.dcid = dcid;
  packet.scid = rng.bytes(8);
  packet.token = rng.bytes(24);  // post-Retry token travels in clear
  packet.packet_number = 2;
  packet.payload = encode_frames({CryptoFrame{0, rng.bytes(100)},
                                  PaddingFrame{1000}});
  auto protector = PacketProtector::for_initial(kVersion1, dcid, false);
  auto bytes = protector.protect(packet);
  size_t offset = 0;
  auto opened = protector.unprotect(bytes, offset);
  ASSERT_TRUE(opened.has_value());
  EXPECT_EQ(opened->token, packet.token);
  // Tampering with the (cleartext) token still breaks authentication:
  // the header is AEAD-associated data.
  auto tampered = bytes;
  tampered[20] ^= 0xff;
  offset = 0;
  EXPECT_FALSE(protector.unprotect(tampered, offset).has_value());
}

TEST(Peek, RetryAndVnShapes) {
  // VN: version field zero.
  VersionNegotiationPacket vn;
  vn.dcid = {1};
  vn.scid = {2};
  vn.supported_versions = {kDraft29};
  auto vn_bytes = encode_version_negotiation(vn, 3);
  auto vn_info = peek_datagram(vn_bytes);
  ASSERT_TRUE(vn_info.has_value());
  EXPECT_EQ(vn_info->type, PacketType::kVersionNegotiation);

  RetryPacket retry;
  retry.version = kVersion1;
  retry.dcid = {1, 2};
  retry.scid = {3, 4};
  retry.token = {9, 9, 9};
  std::vector<uint8_t> odcid{5, 6, 7, 8};
  auto retry_bytes = encode_retry(retry, odcid);
  auto retry_info = peek_datagram(retry_bytes);
  ASSERT_TRUE(retry_info.has_value());
  EXPECT_EQ(retry_info->type, PacketType::kRetry);
  EXPECT_EQ(retry_info->dcid, retry.dcid);
  EXPECT_EQ(retry_info->scid, retry.scid);
}

}  // namespace
