// Chaos lane (`ctest -L chaos`): campaigns under the fault fabric's
// hostile profiles. These are correctness tests, not benchmarks -- the
// assertions are the robustness contract of ISSUE PR-4:
//
//   * every attempt terminates in a classified Table 3 outcome (no
//     crash, no hang, no silently-skipped target) even under the
//     `hostile` profile's loss + reorder + duplication + corruption;
//   * the retry policy is worth its traffic: on `bursty`, retries
//     strictly reduce the timeout fraction;
//   * the per-AS circuit breaker sheds throttled provider load into
//     the explicit kDegraded/kRateLimited classes instead of burning
//     the campaign deadline;
//   * all of it stays deterministic across --jobs.
//
// Kept out of the fast lane (`ctest -LE 'soak|bench|chaos'`) because a
// 10k-target impaired soak is seconds, not milliseconds.
#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "engine/engine.h"
#include "internet/internet.h"
#include "netsim/event_loop.h"
#include "scanner/qscanner.h"
#include "telemetry/metrics.h"

namespace {

constexpr uint64_t kSeed = 0x5ca9;
constexpr int kWeek = 18;
constexpr internet::PopulationParams kPopulation{.dns_corpus_scale = 0.01};

struct ChaosRun {
  uint64_t scanned = 0;
  uint64_t attempts = 0;
  uint64_t retries = 0;
  uint64_t breaker_trips = 0;
  double straggler = 1.0;
  std::map<std::string, uint64_t> outcomes;

  uint64_t outcome(const std::string& name) const {
    auto it = outcomes.find(name);
    return it == outcomes.end() ? 0 : it->second;
  }
  uint64_t classified_total() const {
    uint64_t total = 0;
    for (const auto& [_, count] : outcomes) total += count;
    return total;
  }
};

/// One snapshot for every campaign in this binary: world construction
/// is pure over (params, week), so sharing it only buys build time.
std::shared_ptr<const internet::Snapshot> shared_snapshot() {
  static auto snapshot =
      std::make_shared<const internet::Snapshot>(kPopulation, kWeek);
  return snapshot;
}

std::vector<scanner::QscanTarget> make_targets(size_t count) {
  netsim::EventLoop planning_loop;
  internet::Internet planning(shared_snapshot(), planning_loop);
  std::vector<scanner::QscanTarget> base;
  for (const auto& host : planning.population().hosts()) {
    if (!host.address.is_v4()) continue;
    base.push_back({host.address, std::nullopt, host.advertised_versions});
  }
  std::vector<scanner::QscanTarget> targets;
  targets.reserve(count);
  for (size_t i = 0; i < count; ++i)
    targets.push_back(base[i % base.size()]);
  return targets;
}

/// A deliberately skewed list: the first quarter are real scans, the
/// tail advertises only a GREASE version so compatible() skips it for
/// free. Under the static schedule worker 0 inherits nearly all of the
/// real work -- the straggler scenario the dynamic scheduler exists to
/// erase.
std::vector<scanner::QscanTarget> make_skewed_targets(size_t count) {
  auto targets = make_targets(count);
  for (size_t i = count / 4; i < count; ++i)
    targets[i].version_hint = {0x1a2a3a4au};
  return targets;
}

ChaosRun run_campaign(const std::vector<scanner::QscanTarget>& targets,
                      const std::string& profile, int retries, bool breaker,
                      int jobs,
                      engine::Schedule schedule = engine::Schedule::kDynamic,
                      size_t chunk_size = 0,
                      const std::string& adversary = "") {
  engine::CampaignOptions options;
  options.jobs = jobs;
  options.seed = kSeed;
  options.schedule = schedule;
  options.chunk_size = chunk_size;
  options.week = kWeek;
  options.population = kPopulation;
  options.snapshot = shared_snapshot();
  options.impairment = profile;
  options.adversary = adversary;
  engine::Campaign campaign(options);

  std::atomic<uint64_t> scanned{0};
  std::atomic<uint64_t> attempts{0};
  campaign.run(targets.size(), [&](engine::ShardEnv& env) {
    scanner::QscanOptions qopt;
    qopt.seed = env.seed;
    qopt.metrics = env.metrics;
    qopt.retry.max_attempts = 1 + retries;
    qopt.breaker.enabled = breaker;
    if (breaker) {
      auto* internet = env.internet;
      qopt.asn_of = [internet](const netsim::IpAddress& addr) {
        const auto* host = internet->host_for(addr);
        return host ? host->profile().asn : 0u;
      };
    }
    scanner::QScanner qscanner(env.internet->network(), qopt);
    uint64_t shard_scanned = 0;
    for (size_t i = env.range.begin; i < env.range.end; ++i) {
      if (!qscanner.compatible(targets[i])) continue;
      qscanner.scan_one(targets[i]);
      ++shard_scanned;
    }
    scanned += shard_scanned;
    attempts += qscanner.attempts();
  });

  ChaosRun run;
  run.scanned = scanned.load();
  run.attempts = attempts.load();
  run.straggler = campaign.straggler_ratio();
  auto counter = [&](const std::string& name) -> uint64_t {
    const auto* c = campaign.metrics().find_counter(name);
    return c ? c->value() : 0;
  };
  run.retries = counter("qscan.retries");
  run.breaker_trips = counter("qscan.breaker_trips");
  for (size_t i = 0; i < scanner::kQscanOutcomeCount; ++i) {
    auto name = scanner::to_string(static_cast<scanner::QscanOutcome>(i));
    run.outcomes[name] = counter("qscan.outcome." + name);
  }
  return run;
}

// The headline soak: 10k targets through the worst profile. The fabric
// corrupts, reorders, duplicates and burst-drops, and the server splits
// its CRYPTO flight so reordering actually lands mid-handshake. Success
// is defined as: the campaign finishes (no crash/hang -- the 900 s
// ctest TIMEOUT is the hang detector) and every attempt lands in
// exactly one outcome class.
TEST(Chaos, HostileSoakClassifiesEveryAttempt) {
  auto targets = make_targets(10'000);
  auto run = run_campaign(targets, "hostile", /*retries=*/1,
                          /*breaker=*/false, /*jobs=*/4);
  EXPECT_GT(run.scanned, 0u);
  EXPECT_EQ(run.classified_total(), run.scanned);
  // Retried timeouts really burn extra wire attempts.
  EXPECT_EQ(run.attempts, run.scanned + run.retries);
  EXPECT_GT(run.retries, 0u);
  // The profile is hostile, not fatal: some handshakes still complete,
  // and plenty still time out.
  EXPECT_GT(run.outcome("Success"), 0u);
  EXPECT_GT(run.outcome("Timeout"), 0u);
}

// The adversarial headline soak (acceptance criterion of the
// misbehaving-endpoint overlay): 10k targets against the `malicious`
// adversary ON TOP of the `hostile` fabric -- every server that the
// per-host plan arms mutates its handshake (malformed/duplicated TPs,
// unknown and illegal frames, bad ACK ranges, conflicting CRYPTO,
// version-negotiation loops, mid-handshake stalls, garbage datagrams)
// while the network corrupts, reorders and burst-drops around it.
// Success is: the campaign finishes (the 900 s ctest TIMEOUT is the
// hang detector), zero crashes, every attempt lands in exactly one
// outcome class, the new taxonomy rows actually fire, and the outcome
// mix is invariant across shard counts.
TEST(Chaos, MaliciousAdversarySoakClassifiesEveryAttempt) {
  // Fixed chunk size: the target list cycles duplicate addresses, so
  // outcome-mix invariance only holds when the chunk partition (and
  // with it each link's fabric draw sequence) is pinned independently
  // of --jobs -- the same K-invariance caveat as the hostile soak.
  constexpr size_t kChunk = 97;
  auto targets = make_targets(10'000);
  auto run = run_campaign(targets, "hostile", /*retries=*/1,
                          /*breaker=*/false, /*jobs=*/4,
                          engine::Schedule::kDynamic, kChunk,
                          /*adversary=*/"malicious");
  EXPECT_GT(run.scanned, 0u);
  EXPECT_EQ(run.classified_total(), run.scanned);
  EXPECT_EQ(run.attempts, run.scanned + run.retries);
  // The adversary is pervasive, not total: compliant-planned hosts
  // still succeed, and each misbehavior family lands in its own class.
  EXPECT_GT(run.outcome("Success"), 0u);
  EXPECT_GT(run.outcome("Protocol Error"), 0u);
  EXPECT_GT(run.outcome("Version Loop"), 0u);
  EXPECT_GT(run.outcome("Stalled"), 0u);

  // Outcome-mix invariance: per-host plans key on (seed, address) and
  // the chunk worlds line up at the fixed size, so re-sharding the same
  // list must not move a single row between classes.
  for (int jobs : {1, 8}) {
    auto other = run_campaign(targets, "hostile", /*retries=*/1,
                              /*breaker=*/false, jobs,
                              engine::Schedule::kDynamic, kChunk,
                              /*adversary=*/"malicious");
    EXPECT_EQ(other.outcomes, run.outcomes) << "jobs=" << jobs;
    EXPECT_EQ(other.attempts, run.attempts) << "jobs=" << jobs;
    EXPECT_EQ(other.retries, run.retries) << "jobs=" << jobs;
  }
}

// Retry efficacy (acceptance criterion): on `bursty`, a retry budget
// must strictly reduce the timeout fraction -- the whole point of
// backoff past a loss burst is that the second attempt lands in the
// good state of the Gilbert-Elliott chain.
TEST(Chaos, BurstyRetriesStrictlyReduceTimeouts) {
  auto targets = make_targets(4'000);
  auto base = run_campaign(targets, "bursty", /*retries=*/0,
                           /*breaker=*/false, /*jobs=*/2);
  auto retried = run_campaign(targets, "bursty", /*retries=*/2,
                              /*breaker=*/false, /*jobs=*/2);
  ASSERT_EQ(base.scanned, retried.scanned);
  EXPECT_EQ(base.retries, 0u);
  EXPECT_GT(retried.retries, 0u);
  double base_fraction = static_cast<double>(base.outcome("Timeout")) /
                         static_cast<double>(base.scanned);
  double retried_fraction = static_cast<double>(retried.outcome("Timeout")) /
                            static_cast<double>(retried.scanned);
  EXPECT_LT(retried_fraction, base_fraction);
  // Both runs still classify everything.
  EXPECT_EQ(base.classified_total(), base.scanned);
  EXPECT_EQ(retried.classified_total(), retried.scanned);
}

// The breaker's job on a throttled provider: after the failure
// threshold trips, targets in that AS are shed as kDegraded (zero
// virtual time) with periodic half-open probes recorded as
// kRateLimited when they also fail. Without the breaker every one of
// those targets would burn a full 3 s handshake timeout.
TEST(Chaos, ThrottledBreakerShedsInsteadOfBurningDeadline) {
  auto targets = make_targets(2'000);
  auto run = run_campaign(targets, "throttled", /*retries=*/0,
                          /*breaker=*/true, /*jobs=*/1);
  EXPECT_EQ(run.classified_total(), run.scanned);
  EXPECT_GT(run.breaker_trips, 0u);
  EXPECT_GT(run.outcome("Degraded"), 0u);
  EXPECT_GT(run.outcome("Rate Limited"), 0u);
  // Degraded targets consumed no wire attempts.
  EXPECT_EQ(run.attempts + run.outcome("Degraded"), run.scanned);
}

// Determinism under impairment: the fabric's counter-based draws and
// the retry backoff must not depend on shard count, so the outcome mix
// is identical at any --jobs (the differential test checks the full
// CSV/metrics/qlog byte-identity; this is the chaos-lane smoke of the
// same contract). The list must stay within the distinct-host count:
// K-invariance is defined over deduplicated target lists, because a
// repeated address resumes its link's fabric draw sequence mid-stream
// in whichever shard scans it (see DESIGN.md).
TEST(Chaos, HostileOutcomeMixInvariantAcrossJobs) {
  auto targets = make_targets(2'000);
  auto serial = run_campaign(targets, "hostile", /*retries=*/1,
                             /*breaker=*/false, /*jobs=*/1);
  auto sharded = run_campaign(targets, "hostile", /*retries=*/1,
                              /*breaker=*/false, /*jobs=*/4);
  EXPECT_EQ(serial.scanned, sharded.scanned);
  EXPECT_EQ(serial.attempts, sharded.attempts);
  EXPECT_EQ(serial.retries, sharded.retries);
  EXPECT_EQ(serial.outcomes, sharded.outcomes);
}

// The dynamic-scheduler soak (this PR's acceptance scenario): 10k
// hostile targets whose real work is concentrated in the first quarter
// of the list. Static sharding hands nearly all of it to worker 0;
// dynamic chunks off the shared cursor spread it across the pool. The
// contract is threefold: every attempt still lands in a classified
// outcome, the busy-time straggler ratio (max/mean across workers,
// core-count robust) drops strictly below the static run's, and the
// outcome mix at a fixed chunk size is invariant across --jobs.
TEST(Chaos, DynamicSoakErasesStragglersAndStaysJobsInvariant) {
  constexpr size_t kChunk = 97;  // fixed, so the chunk worlds line up
  auto targets = make_skewed_targets(10'000);

  auto fixed = run_campaign(targets, "hostile", /*retries=*/1,
                            /*breaker=*/false, /*jobs=*/4,
                            engine::Schedule::kStatic);
  auto stolen = run_campaign(targets, "hostile", /*retries=*/1,
                             /*breaker=*/false, /*jobs=*/4,
                             engine::Schedule::kDynamic, kChunk);

  // Both schedules classify every attempted target; the skipped GREASE
  // tail never reaches the wire.
  EXPECT_EQ(fixed.classified_total(), fixed.scanned);
  EXPECT_EQ(stolen.classified_total(), stolen.scanned);
  // (A handful of the real quarter is natively incompatible too, so
  // bound it rather than pinning the exact count.)
  EXPECT_GT(fixed.scanned, targets.size() / 8);
  EXPECT_LE(fixed.scanned, targets.size() / 4);
  EXPECT_EQ(stolen.scanned, fixed.scanned);

  // Same merged outcome mix: the schedule moves work between workers,
  // never between outcome classes.
  EXPECT_EQ(stolen.outcomes, fixed.outcomes);
  EXPECT_EQ(stolen.attempts, fixed.attempts);
  EXPECT_EQ(stolen.retries, fixed.retries);

  // Stealing erases the straggler. Static pins the whole heavy quarter
  // on one worker (ratio ~ jobs); dynamic must land strictly below it.
  EXPECT_GT(fixed.straggler, 1.5);
  EXPECT_LT(stolen.straggler, fixed.straggler);

  // Jobs-invariance at the fixed chunk size: the chunk partition and
  // seeds are a function of (n, chunk_size, seed) only, so the outcome
  // mix cannot move with the worker count.
  for (int jobs : {1, 2, 8}) {
    auto other = run_campaign(targets, "hostile", /*retries=*/1,
                              /*breaker=*/false, jobs,
                              engine::Schedule::kDynamic, kChunk);
    EXPECT_EQ(other.outcomes, stolen.outcomes) << "jobs=" << jobs;
    EXPECT_EQ(other.scanned, stolen.scanned) << "jobs=" << jobs;
    EXPECT_EQ(other.attempts, stolen.attempts) << "jobs=" << jobs;
    EXPECT_EQ(other.retries, stolen.retries) << "jobs=" << jobs;
  }
}

}  // namespace
