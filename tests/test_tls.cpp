// TLS stack tests: extension codec, handshake message codec,
// certificates (wildcards, signing, rotation identity), key schedule
// symmetry and record-layer encryption.
#include <gtest/gtest.h>

#include "tls/extensions.h"
#include "tls/handshake.h"
#include "tls/key_schedule.h"
#include "tls/record.h"
#include "crypto/rng.h"

namespace {

using namespace tls;

TEST(Extensions, SniRoundTrip) {
  std::vector<Extension> exts{SniExtension{"www.example.com"}};
  wire::Writer w;
  encode_extensions(w, exts, HandshakeContext::kClientHello);
  wire::Reader r(w.span());
  auto decoded = decode_extensions(r, HandshakeContext::kClientHello);
  ASSERT_EQ(decoded.size(), 1u);
  EXPECT_EQ(std::get<SniExtension>(decoded[0]).host_name, "www.example.com");
}

TEST(Extensions, AlpnRoundTrip) {
  std::vector<Extension> exts{AlpnExtension{{"h3", "h3-29", "http/1.1"}}};
  wire::Writer w;
  encode_extensions(w, exts, HandshakeContext::kClientHello);
  wire::Reader r(w.span());
  auto decoded = decode_extensions(r, HandshakeContext::kClientHello);
  EXPECT_EQ(std::get<AlpnExtension>(decoded[0]).protocols,
            (std::vector<std::string>{"h3", "h3-29", "http/1.1"}));
}

TEST(Extensions, SupportedVersionsContextSensitive) {
  // ClientHello: list; ServerHello: single selection.
  std::vector<Extension> ch_exts{
      SupportedVersionsExtension{{kVersion13, kVersion12}}};
  wire::Writer w1;
  encode_extensions(w1, ch_exts, HandshakeContext::kClientHello);
  wire::Reader r1(w1.span());
  auto d1 = decode_extensions(r1, HandshakeContext::kClientHello);
  EXPECT_EQ(std::get<SupportedVersionsExtension>(d1[0]).versions.size(), 2u);

  std::vector<Extension> sh_exts{SupportedVersionsExtension{{kVersion13}}};
  wire::Writer w2;
  encode_extensions(w2, sh_exts, HandshakeContext::kServerHello);
  wire::Reader r2(w2.span());
  auto d2 = decode_extensions(r2, HandshakeContext::kServerHello);
  EXPECT_EQ(std::get<SupportedVersionsExtension>(d2[0]).versions,
            (std::vector<uint16_t>{kVersion13}));
}

TEST(Extensions, TransportParamsCodepointPreserved) {
  for (uint16_t cp : {uint16_t{0x39}, uint16_t{0xffa5}}) {
    std::vector<Extension> exts{
        TransportParametersExtension{cp, {1, 2, 3}}};
    wire::Writer w;
    encode_extensions(w, exts, HandshakeContext::kEncryptedExtensions);
    wire::Reader r(w.span());
    auto decoded = decode_extensions(r, HandshakeContext::kEncryptedExtensions);
    const auto& tp = std::get<TransportParametersExtension>(decoded[0]);
    EXPECT_EQ(tp.codepoint, cp);
    EXPECT_EQ(tp.payload, (std::vector<uint8_t>{1, 2, 3}));
  }
}

TEST(Extensions, UnknownSurvivesAsRaw) {
  std::vector<Extension> exts{RawExtension{0x1234, {0xde, 0xad}}};
  wire::Writer w;
  encode_extensions(w, exts, HandshakeContext::kClientHello);
  wire::Reader r(w.span());
  auto decoded = decode_extensions(r, HandshakeContext::kClientHello);
  const auto& raw = std::get<RawExtension>(decoded[0]);
  EXPECT_EQ(raw.type, 0x1234);
  EXPECT_EQ(raw.data, (std::vector<uint8_t>{0xde, 0xad}));
}

TEST(Handshake, ClientHelloRoundTrip) {
  ClientHello ch;
  ch.random.fill(0x42);
  ch.cipher_suites = {CipherSuite::kAes128GcmSha256,
                      CipherSuite::kChaCha20Poly1305Sha256};
  ch.extensions.push_back(SniExtension{"example.com"});
  ch.extensions.push_back(KeyShareExtension{
      {{static_cast<uint16_t>(NamedGroup::kX25519), {1, 2, 3, 4, 5, 6, 7, 8}}}});
  auto bytes = encode_handshake(ch);
  wire::Reader r(bytes);
  auto msg = decode_handshake(r);
  const auto& decoded = std::get<ClientHello>(msg);
  EXPECT_EQ(decoded.random, ch.random);
  EXPECT_EQ(decoded.cipher_suites, ch.cipher_suites);
  ASSERT_EQ(decoded.extensions.size(), 2u);
  EXPECT_EQ(find_sni(decoded.extensions)->host_name, "example.com");
}

TEST(Handshake, ServerHelloNegotiatedVersion) {
  ServerHello sh;
  EXPECT_EQ(sh.negotiated_version(), kVersion12);  // no extension -> legacy
  sh.extensions.push_back(SupportedVersionsExtension{{kVersion13}});
  EXPECT_EQ(sh.negotiated_version(), kVersion13);
}

TEST(Handshake, FlightRoundTrip) {
  EncryptedExtensions ee;
  ee.extensions.push_back(AlpnExtension{{"h3"}});
  Certificate cert;
  cert.subject_cn = "example.com";
  cert.issuer_cn = "CA";
  CertificateMessage cm;
  cm.chain.push_back(cert);
  Finished fin;
  fin.verify_data.assign(32, 0xaa);

  std::vector<uint8_t> flight;
  for (const HandshakeMessage& msg :
       std::initializer_list<HandshakeMessage>{ee, cm, fin}) {
    auto bytes = encode_handshake(msg);
    flight.insert(flight.end(), bytes.begin(), bytes.end());
  }
  auto decoded = decode_handshake_flight(flight);
  ASSERT_EQ(decoded.size(), 3u);
  EXPECT_TRUE(std::holds_alternative<EncryptedExtensions>(decoded[0]));
  EXPECT_TRUE(std::holds_alternative<CertificateMessage>(decoded[1]));
  EXPECT_TRUE(std::holds_alternative<Finished>(decoded[2]));
}

TEST(Certificate, WildcardMatching) {
  EXPECT_TRUE(wildcard_match("example.com", "example.com"));
  EXPECT_FALSE(wildcard_match("example.com", "www.example.com"));
  EXPECT_TRUE(wildcard_match("*.example.com", "www.example.com"));
  EXPECT_FALSE(wildcard_match("*.example.com", "example.com"));
  EXPECT_FALSE(wildcard_match("*.example.com", "a.b.example.com"));
  EXPECT_FALSE(wildcard_match("*.example.com", "wwwexample.com"));
  EXPECT_FALSE(wildcard_match("*", "example.com"));
}

TEST(Certificate, MatchesHostViaSan) {
  Certificate cert;
  cert.subject_cn = "cdn.example";
  cert.san_dns = {"cdn.example", "*.customer.example"};
  EXPECT_TRUE(cert.matches_host("cdn.example"));
  EXPECT_TRUE(cert.matches_host("www.customer.example"));
  EXPECT_FALSE(cert.matches_host("other.example"));
}

TEST(Certificate, SignVerify) {
  Certificate cert;
  cert.subject_cn = "example.com";
  cert.issuer_cn = "Example CA";
  cert.serial = 7;
  std::vector<uint8_t> ca_key{1, 2, 3, 4};
  sign_certificate(cert, ca_key);
  EXPECT_TRUE(verify_certificate(cert, ca_key));
  std::vector<uint8_t> other_key{9, 9, 9};
  EXPECT_FALSE(verify_certificate(cert, other_key));
  cert.subject_cn = "evil.com";
  EXPECT_TRUE(cert.self_signed() == false);
  EXPECT_FALSE(verify_certificate(cert, ca_key));
}

TEST(Certificate, EncodeDecodeFingerprint) {
  Certificate cert;
  cert.subject_cn = "example.com";
  cert.san_dns = {"example.com", "*.example.com"};
  cert.issuer_cn = "Example CA";
  cert.serial = 99;
  cert.not_before_day = 18700;
  cert.not_after_day = 18790;
  cert.public_key_id = 12345;
  sign_certificate(cert, std::vector<uint8_t>{5, 5});
  auto decoded = Certificate::decode(cert.encode());
  EXPECT_EQ(decoded, cert);
  EXPECT_EQ(decoded.fingerprint(), cert.fingerprint());
  // Rotation (new serial/validity) changes the fingerprint -- this is
  // what makes Google's weekly rotation visible in Table 5.
  Certificate rotated = cert;
  rotated.serial = 100;
  rotated.not_before_day += 7;
  rotated.not_after_day += 7;
  sign_certificate(rotated, std::vector<uint8_t>{5, 5});
  EXPECT_NE(rotated.fingerprint(), cert.fingerprint());
}

TEST(Certificate, SelfSigned) {
  Certificate cert;
  cert.subject_cn = "invalid2.invalid";
  cert.issuer_cn = "invalid2.invalid";
  EXPECT_TRUE(cert.self_signed());
}

TEST(KeySchedule, BothSidesDeriveSameSecrets) {
  // Simulate both endpoints feeding identical transcripts.
  std::vector<uint8_t> ch(100, 1), sh(80, 2), ee(60, 3), fin(36, 4);
  std::vector<uint8_t> shared{9, 8, 7, 6, 5, 4, 3, 2};
  KeySchedule client, server;
  for (auto* ks : {&client, &server}) {
    ks->add_message(ch);
    ks->add_message(sh);
    ks->derive_handshake_secrets(shared);
    ks->add_message(ee);
    ks->add_message(fin);
    ks->derive_application_secrets();
  }
  EXPECT_EQ(client.client_handshake_secret(), server.client_handshake_secret());
  EXPECT_EQ(client.server_application_secret(),
            server.server_application_secret());
  EXPECT_NE(client.client_handshake_secret(),
            client.server_handshake_secret());
}

TEST(KeySchedule, TranscriptSensitivity) {
  std::vector<uint8_t> shared{1, 2, 3};
  KeySchedule a, b;
  a.add_message(std::vector<uint8_t>{1, 2, 3});
  b.add_message(std::vector<uint8_t>{1, 2, 4});
  a.derive_handshake_secrets(shared);
  b.derive_handshake_secrets(shared);
  EXPECT_NE(a.client_handshake_secret(), b.client_handshake_secret());
}

TEST(KeySchedule, QuicAndTlsKeysDiffer) {
  std::vector<uint8_t> secret(32, 0x11);
  auto quic_keys = derive_traffic_keys(secret, KeyUsage::kQuic);
  auto tls_keys = derive_traffic_keys(secret, KeyUsage::kTls);
  EXPECT_NE(quic_keys.key, tls_keys.key);
  EXPECT_EQ(quic_keys.key.size(), 16u);
  EXPECT_EQ(quic_keys.iv.size(), 12u);
  EXPECT_EQ(quic_keys.hp.size(), 16u);
  EXPECT_TRUE(tls_keys.hp.empty());
}

TEST(Record, PlaintextRoundTrip) {
  Record rec;
  rec.type = ContentType::kHandshake;
  rec.payload = {1, 2, 3, 4};
  auto bytes = encode_record(rec);
  auto records = decode_records(bytes);
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].type, ContentType::kHandshake);
  EXPECT_EQ(records[0].payload, rec.payload);
}

TEST(Record, StreamOfRecords) {
  std::vector<uint8_t> stream;
  for (int i = 0; i < 3; ++i) {
    Record rec;
    rec.type = ContentType::kHandshake;
    rec.payload = std::vector<uint8_t>(static_cast<size_t>(i + 1),
                                       static_cast<uint8_t>(i));
    auto bytes = encode_record(rec);
    stream.insert(stream.end(), bytes.begin(), bytes.end());
  }
  EXPECT_EQ(decode_records(stream).size(), 3u);
}

TEST(Record, CrypterSealOpen) {
  crypto::Rng rng(3);
  TrafficKeys keys;
  keys.key = rng.bytes(16);
  keys.iv = rng.bytes(12);
  RecordCrypter tx(keys), rx(keys);
  for (int i = 0; i < 5; ++i) {  // sequence numbers advance in step
    auto payload = rng.bytes(50);
    auto bytes = tx.seal(ContentType::kHandshake, payload);
    auto records = decode_records(bytes);
    ASSERT_EQ(records.size(), 1u);
    EXPECT_EQ(records[0].type, ContentType::kApplicationData);
    auto opened = rx.open(records[0]);
    ASSERT_TRUE(opened.has_value()) << "record " << i;
    EXPECT_EQ(opened->type, ContentType::kHandshake);
    EXPECT_EQ(opened->payload, payload);
  }
}

TEST(Record, CrypterRejectsTampering) {
  crypto::Rng rng(4);
  TrafficKeys keys;
  keys.key = rng.bytes(16);
  keys.iv = rng.bytes(12);
  RecordCrypter tx(keys), rx(keys);
  auto bytes = tx.seal(ContentType::kApplicationData, rng.bytes(20));
  bytes[bytes.size() - 1] ^= 1;
  auto records = decode_records(bytes);
  EXPECT_FALSE(rx.open(records[0]).has_value());
}

TEST(Record, WrongKeysCannotOpen) {
  crypto::Rng rng(5);
  TrafficKeys keys1, keys2;
  keys1.key = rng.bytes(16);
  keys1.iv = rng.bytes(12);
  keys2.key = rng.bytes(16);
  keys2.iv = rng.bytes(12);
  RecordCrypter tx(keys1), rx(keys2);
  auto bytes = tx.seal(ContentType::kApplicationData, rng.bytes(20));
  EXPECT_FALSE(rx.open(decode_records(bytes)[0]).has_value());
}

TEST(Types, AlertAndCipherNames) {
  EXPECT_EQ(alert_name(AlertDescription::kHandshakeFailure),
            "handshake_failure");
  EXPECT_EQ(static_cast<int>(AlertDescription::kHandshakeFailure), 0x28);
  EXPECT_EQ(cipher_suite_name(CipherSuite::kAes128GcmSha256),
            "TLS_AES_128_GCM_SHA256");
  EXPECT_EQ(named_group_name(NamedGroup::kX25519), "x25519");
}

TEST(Record, OutOfOrderSequenceFailsToOpen) {
  crypto::Rng rng(6);
  TrafficKeys keys;
  keys.key = rng.bytes(16);
  keys.iv = rng.bytes(12);
  RecordCrypter tx(keys), rx(keys);
  auto first = tx.seal(ContentType::kApplicationData, rng.bytes(10));
  auto second = tx.seal(ContentType::kApplicationData, rng.bytes(10));
  // Opening the second record first uses the wrong nonce sequence.
  EXPECT_FALSE(rx.open(decode_records(second)[0]).has_value());
  // And the in-order record still opens (failed opens do not advance).
  EXPECT_TRUE(rx.open(decode_records(first)[0]).has_value());
}

TEST(Certificate, EmptySanListStillMatchesCn) {
  Certificate cert;
  cert.subject_cn = "single.example";
  cert.issuer_cn = "CA";
  EXPECT_TRUE(cert.matches_host("single.example"));
  EXPECT_FALSE(cert.matches_host("other.example"));
}

TEST(Handshake, EmptyAlpnListRejectedOnWire) {
  // RFC 7301 forbids empty protocol names; the codec enforces it.
  std::vector<Extension> exts{AlpnExtension{{""}}};
  wire::Writer w;
  EXPECT_THROW(encode_extensions(w, exts, HandshakeContext::kClientHello),
               std::invalid_argument);
}

}  // namespace
