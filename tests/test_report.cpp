// Report pipeline tests: the RFC 4180 codec, the fingerprint golden
// contract, the accumulator's merge algebra, and the subsystem's core
// acceptance -- report artifacts byte-identical across shard counts
// and between the streaming and offline (CSV replay) front ends.
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "engine/engine.h"
#include "internet/internet.h"
#include "internet/tp_catalog.h"
#include "report/csv.h"
#include "report/fingerprint.h"
#include "report/json.h"
#include "report/report.h"
#include "scanner/qscanner.h"
#include "telemetry/metrics.h"

namespace {

constexpr uint64_t kSeed = 0x5ca9;
constexpr int kWeek = 18;
constexpr internet::PopulationParams kPopulation{.dns_corpus_scale = 0.002};

// ---------------------------------------------------------------------
// RFC 4180 codec
// ---------------------------------------------------------------------

std::vector<std::vector<std::string>> parse_all(const std::string& text) {
  return report::parse_csv(text);
}

TEST(Csv, EscapePlainFieldsUntouched) {
  EXPECT_EQ(report::csv_escape("plain"), "plain");
  EXPECT_EQ(report::csv_escape(""), "");
  EXPECT_EQ(report::csv_escape("with space"), "with space");
}

TEST(Csv, EscapeQuotesDelimitersAndNewlines) {
  EXPECT_EQ(report::csv_escape("a,b"), "\"a,b\"");
  EXPECT_EQ(report::csv_escape("say \"hi\""), "\"say \"\"hi\"\"\"");
  EXPECT_EQ(report::csv_escape("line\nbreak"), "\"line\nbreak\"");
  EXPECT_EQ(report::csv_escape("cr\rhere"), "\"cr\rhere\"");
}

TEST(Csv, ReaderHandlesQuotedFields) {
  auto rows = parse_all("a,\"b,c\",d\n\"x\"\"y\",\"1\n2\",z\n");
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0], (std::vector<std::string>{"a", "b,c", "d"}));
  EXPECT_EQ(rows[1], (std::vector<std::string>{"x\"y", "1\n2", "z"}));
}

TEST(Csv, ReaderHandlesCrlfAndMissingFinalNewline) {
  auto rows = parse_all("a,b\r\nc,d");
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0], (std::vector<std::string>{"a", "b"}));
  EXPECT_EQ(rows[1], (std::vector<std::string>{"c", "d"}));
}

TEST(Csv, ReaderHandlesEmptyFields) {
  auto rows = parse_all(",,\n");
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0], (std::vector<std::string>{"", "", ""}));
}

TEST(Csv, ReaderRejectsMalformedQuoting) {
  EXPECT_THROW(parse_all("a\"b,c\n"), std::runtime_error);
  EXPECT_THROW(parse_all("\"unterminated\n"), std::runtime_error);
}

// Writer <-> reader round-trip property: any field survives
// csv_join + CsvReader, including the wire-derived nasties the
// scanner prints verbatim (server headers, certificate names, SNI).
TEST(Csv, RoundTripPropertySweep) {
  // Deterministic generator; no global RNG state.
  uint64_t state = 0x9e3779b97f4a7c15ull;
  auto next = [&state]() {
    state ^= state << 13;
    state ^= state >> 7;
    state ^= state << 17;
    return state;
  };
  const std::string alphabet = "ab,\"\n\r;| %x0\t";
  for (int round = 0; round < 200; ++round) {
    std::vector<std::string> fields(1 + next() % 6);
    for (auto& field : fields) {
      size_t len = next() % 12;
      for (size_t i = 0; i < len; ++i)
        field += alphabet[next() % alphabet.size()];
    }
    auto rows = parse_all(report::csv_join(fields) + "\n");
    ASSERT_EQ(rows.size(), 1u) << "round " << round;
    EXPECT_EQ(rows[0], fields) << "round " << round;
  }
}

// ---------------------------------------------------------------------
// Row features
// ---------------------------------------------------------------------

report::QscanRowFeatures sample_features() {
  report::QscanRowFeatures f;
  f.address = "104.16.1.1";
  f.sni = "example, \"quoted\".com";
  f.outcome = "Success";
  f.version = "ietf-01";
  f.alpn = "h3";
  f.cert_cn = "cn\nwith newline";
  f.tp_config = 7;
  f.initial_max_data = 1048576;
  f.max_udp_payload = 1472;
  f.server = "LiteSpeed";
  return f;
}

TEST(RowFeatures, CsvRoundTrip) {
  auto f = sample_features();
  auto rows = parse_all(report::to_csv_row(f) + "\n");
  ASSERT_EQ(rows.size(), 1u);
  auto parsed = report::features_from_csv(rows[0]);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(*parsed, f);
}

TEST(RowFeatures, RejectsMalformedRows) {
  auto fields = parse_all(report::to_csv_row(sample_features()) + "\n")[0];
  auto short_row = fields;
  short_row.pop_back();
  EXPECT_FALSE(report::features_from_csv(short_row).has_value());
  auto bad_number = fields;
  bad_number[7] = "not-a-number";
  EXPECT_FALSE(report::features_from_csv(bad_number).has_value());
  auto bad_config = fields;
  bad_config[6] = "";
  EXPECT_FALSE(report::features_from_csv(bad_config).has_value());
}

// ---------------------------------------------------------------------
// Fingerprint golden contract
// ---------------------------------------------------------------------

// Every catalog configuration must classify to its own id and its own
// library -- the TP-presence-and-values clustering of section 5.2.
TEST(Fingerprint, EveryCatalogEntryClassifiesToItself) {
  for (const auto& entry : internet::tp_catalog()) {
    auto fp = report::fingerprint_of(entry.params);
    EXPECT_EQ(fp.config_id, entry.id);
    EXPECT_TRUE(fp.known());
    EXPECT_EQ(fp.library, report::library_for_owner(entry.owner_hint))
        << "config " << entry.id;
    EXPECT_NE(fp.library, report::kUnknownLibrary) << "config " << entry.id;
  }
}

// A perturbed configuration must classify as unknown -- never be
// attributed to the nearest library. Perturb every config three ways:
// change a value, clear a present parameter, set an absent one.
TEST(Fingerprint, PerturbedConfigsAreUnknownNeverMisattributed) {
  for (const auto& entry : internet::tp_catalog()) {
    auto expect_unknown = [&](quic::TransportParameters tp,
                              const char* how) {
      auto fp = report::fingerprint_of(tp);
      EXPECT_EQ(fp.config_id, -1)
          << "config " << entry.id << " perturbed by " << how
          << " misattributed to config " << fp.config_id;
      EXPECT_EQ(fp.library, report::kUnknownLibrary)
          << "config " << entry.id << " perturbed by " << how;
    };

    auto tweaked = entry.params;
    tweaked.initial_max_data = tweaked.initial_max_data.value_or(0) + 1;
    expect_unknown(tweaked, "initial_max_data + 1");

    auto cleared = entry.params;
    cleared.max_idle_timeout.reset();
    if (cleared.config_key() != entry.params.config_key())
      expect_unknown(cleared, "clearing max_idle_timeout");

    auto extended = entry.params;
    extended.ack_delay_exponent = 7;  // no catalog entry uses 7
    expect_unknown(extended, "ack_delay_exponent = 7");
  }
}

TEST(Fingerprint, OutOfRangeConfigIdsAreUnknown) {
  EXPECT_EQ(report::fingerprint_of_config(-1).library,
            report::kUnknownLibrary);
  EXPECT_EQ(report::fingerprint_of_config(internet::kTpConfigCount).library,
            report::kUnknownLibrary);
  EXPECT_FALSE(report::fingerprint_of_config(-1).known());
}

TEST(Fingerprint, OwnerHintsCoverAllLibraries) {
  EXPECT_EQ(report::library_for_owner("cloudflare"), "quiche");
  EXPECT_EQ(report::library_for_owner("mvfst-as"), "mvfst");
  EXPECT_EQ(report::library_for_owner("mvfst-pop"), "mvfst");
  EXPECT_EQ(report::library_for_owner("gvs"), "google-quic");
  EXPECT_EQ(report::library_for_owner("google-frontend"), "google-quic");
  EXPECT_EQ(report::library_for_owner("litespeed"), "lsquic");
  EXPECT_EQ(report::library_for_owner("nginx"), "nginx-quic");
  EXPECT_EQ(report::library_for_owner("caddy"), "quic-go");
  EXPECT_EQ(report::library_for_owner("misc"), "custom");
  EXPECT_EQ(report::library_for_owner("nonsense"), report::kUnknownLibrary);
}

// ---------------------------------------------------------------------
// Merge algebra
// ---------------------------------------------------------------------

std::string report_json(const report::ReportAccumulator& acc) {
  std::ostringstream out;
  report::write_report_json(out, acc);
  return out.str();
}

// Builds a deterministic pseudo-random accumulator exercising every
// add_* path.
report::ReportAccumulator synthetic_accumulator(uint64_t seed,
                                                int events) {
  uint64_t state = seed * 0x9e3779b97f4a7c15ull + 1;
  auto next = [&state]() {
    state ^= state << 13;
    state ^= state >> 7;
    state ^= state << 17;
    return state;
  };
  const char* outcomes[] = {"Success", "Timeout", "Crypto Error (0x128)",
                            "Rate Limited", "Degraded"};
  report::ReportAccumulator acc("qscanner");
  for (int i = 0; i < events; ++i) {
    switch (next() % 3) {
      case 0: {
        report::QscanRowFeatures row;
        row.address = "10.0." + std::to_string(next() % 8) + "." +
                      std::to_string(next() % 200);
        row.outcome = outcomes[next() % 5];
        if (row.success()) {
          row.version = next() % 2 ? "ietf-01" : "draft-29";
          row.alpn = "h3";
          row.tp_config = static_cast<int>(next() % 46) - 1;
          row.initial_max_data = 1024 << (next() % 6);
          row.max_udp_payload = next() % 2 ? 1472 : 65527;
          row.server = next() % 2 ? "nginx" : "LiteSpeed";
        }
        acc.add_row(row, static_cast<uint32_t>(next() % 9));
        break;
      }
      case 1: {
        std::vector<quic::Version> versions{quic::kVersion1};
        if (next() % 2) versions.push_back(quic::kDraft29);
        acc.add_zmap_hit("172.16.0." + std::to_string(next() % 220),
                         versions, static_cast<uint32_t>(next() % 9));
        break;
      }
      default: {
        dns::BulkRecord record;
        record.domain = "host-" + std::to_string(next() % 40) + ".example";
        if (next() % 2)
          record.a.push_back(*netsim::IpAddress::parse(
              "10.0.0." + std::to_string(next() % 200)));
        if (next() % 3 == 0) {
          dns::SvcbData svcb;
          svcb.alpn = {"h3"};
          record.https.push_back(std::move(svcb));
        }
        acc.add_dns_record(next() % 2 ? "alexa" : "umbrella", record);
        break;
      }
    }
  }
  return acc;
}

TEST(MergeAlgebra, EmptyIsIdentity) {
  auto acc = synthetic_accumulator(1, 64);
  auto expected = report_json(acc);

  report::ReportAccumulator left;
  left.merge_from(acc);
  EXPECT_EQ(report_json(left), expected);

  auto right = synthetic_accumulator(1, 64);
  right.merge_from(report::ReportAccumulator());
  EXPECT_EQ(report_json(right), expected);
}

TEST(MergeAlgebra, CommutativeAndAssociativeSweep) {
  for (uint64_t seed = 1; seed <= 8; ++seed) {
    auto a = synthetic_accumulator(seed, 48);
    auto b = synthetic_accumulator(seed + 100, 37);
    auto c = synthetic_accumulator(seed + 200, 23);

    // a + b == b + a
    report::ReportAccumulator ab, ba;
    ab.merge_from(a);
    ab.merge_from(b);
    ba.merge_from(b);
    ba.merge_from(a);
    EXPECT_EQ(report_json(ab), report_json(ba)) << "seed " << seed;

    // (a + b) + c == a + (b + c)
    report::ReportAccumulator ab_c, bc, a_bc;
    ab_c.merge_from(ab);
    ab_c.merge_from(c);
    bc.merge_from(b);
    bc.merge_from(c);
    a_bc.merge_from(a);
    a_bc.merge_from(bc);
    EXPECT_EQ(report_json(ab_c), report_json(a_bc)) << "seed " << seed;
  }
}

TEST(Accumulator, CountersBumpOnAddNotOnMerge) {
  telemetry::MetricsRegistry metrics;
  report::ReportAccumulator acc("qscanner", &metrics);
  report::QscanRowFeatures row;
  row.address = "10.0.0.1";
  row.outcome = "Success";
  row.tp_config = -1;
  acc.add_row(row, 1);
  acc.add_zmap_hit("10.0.0.2", {quic::kVersion1}, 1);

  const auto* rows = metrics.find_counter("report.rows");
  const auto* hits = metrics.find_counter("report.zmap_hits");
  const auto* unknown = metrics.find_counter("report.fingerprint_unknown");
  ASSERT_NE(rows, nullptr);
  ASSERT_NE(hits, nullptr);
  ASSERT_NE(unknown, nullptr);
  EXPECT_EQ(rows->value(), 1u);
  EXPECT_EQ(hits->value(), 1u);
  EXPECT_EQ(unknown->value(), 1u);

  // Merging someone else's accumulator must not re-count observations.
  acc.merge_from(synthetic_accumulator(3, 32));
  EXPECT_EQ(rows->value(), 1u);
  EXPECT_EQ(hits->value(), 1u);
}

TEST(Accumulator, DnsJoinAndListStats) {
  report::ReportAccumulator acc("dns");
  dns::BulkRecord record;
  record.domain = "joined.example";
  record.a.push_back(*netsim::IpAddress::parse("10.1.2.3"));
  dns::SvcbData svcb;
  svcb.alpn = {"h3", "h3-29"};
  svcb.ipv4_hints.push_back(*netsim::IpAddress::parse("10.1.2.4"));
  record.https.push_back(svcb);
  acc.add_dns_record("alexa", record);

  const auto& stats = acc.dns_lists().at("alexa");
  EXPECT_EQ(stats.resolved, 1u);
  EXPECT_EQ(stats.with_a, 1u);
  EXPECT_EQ(stats.with_aaaa, 0u);
  EXPECT_EQ(stats.with_https_rr, 1u);
  EXPECT_EQ(acc.alpn_sets().at("h3 h3-29"), 1u);

  // A successful scan row on the joined address makes the Table 1 join
  // columns non-zero.
  report::QscanRowFeatures row;
  row.address = "10.1.2.3";
  row.outcome = "Success";
  acc.add_row(row, 1);
  auto json = report::json::parse(report_json(acc));
  const auto* table1 = json.find("table1_discovery");
  ASSERT_NE(table1, nullptr);
  EXPECT_EQ(table1->int_or("joined_addresses", -1), 1);
  EXPECT_EQ(table1->int_or("joined_domains", -1), 1);
  EXPECT_EQ(table1->int_or("dns_pairs", -1), 2);
}

TEST(Accumulator, VersionSupportMatrixCountsClassesOnce) {
  report::ReportAccumulator acc("zmap");
  acc.add_zmap_hit("10.0.0.1", {quic::kVersion1, quic::kDraft29}, 1);
  const auto& support = acc.version_support();
  EXPECT_EQ(support.at("ietf-01"), 1u);
  EXPECT_EQ(support.at("draft-29"), 1u);
  // Both announced versions are IETF-class: the class row counts the
  // address once, not twice.
  EXPECT_EQ(support.at("any-ietf"), 1u);
  EXPECT_EQ(support.count("any-gquic"), 0u);
}

// ---------------------------------------------------------------------
// JSON artifact and diff
// ---------------------------------------------------------------------

TEST(Json, ParserRoundTripsReportDocument) {
  auto acc = synthetic_accumulator(5, 96);
  auto text = report_json(acc);
  auto doc = report::json::parse(text);
  ASSERT_EQ(doc.kind, report::json::Value::Kind::kObject);
  const auto* schema = doc.find("schema");
  ASSERT_NE(schema, nullptr);
  EXPECT_EQ(schema->string, "quic-campaign-report");
  const auto* table1 = doc.find("table1_discovery");
  ASSERT_NE(table1, nullptr);
  EXPECT_EQ(table1->int_or("rows", -1),
            static_cast<int64_t>(acc.rows()));
}

TEST(Json, ParserRejectsGarbage) {
  EXPECT_THROW(report::json::parse("{"), std::runtime_error);
  EXPECT_THROW(report::json::parse("{} trailing"), std::runtime_error);
  EXPECT_THROW(report::json::parse("{\"a\": 01x}"), std::runtime_error);
}

TEST(Json, EscapeRoundTripsThroughParser) {
  std::string nasty = "quote \" backslash \\ newline \n tab \t bell \x07";
  auto doc = report::json::parse("\"" + report::json::escape(nasty) + "\"");
  EXPECT_EQ(doc.string, nasty);
}

TEST(Diff, ReportsDriftBetweenWeeks) {
  auto baseline = report_json(synthetic_accumulator(7, 64));
  auto current = report_json(synthetic_accumulator(8, 80));
  auto diff = report::render_report_diff(baseline, current);
  EXPECT_NE(diff.find("# Report drift"), std::string::npos);
  EXPECT_NE(diff.find("| Metric | Baseline | Current | Delta |"),
            std::string::npos);

  // Identical reports drift nowhere.
  auto none = report::render_report_diff(baseline, baseline);
  EXPECT_NE(none.find("0 of"), std::string::npos);
}

// ---------------------------------------------------------------------
// Campaign differential: jobs-invariance and offline replay
// ---------------------------------------------------------------------

/// One snapshot shared by the planning world and every campaign run;
/// world construction is pure over (params, week).
std::shared_ptr<const internet::Snapshot> shared_snapshot() {
  static auto snapshot =
      std::make_shared<const internet::Snapshot>(kPopulation, kWeek);
  return snapshot;
}

std::vector<scanner::QscanTarget> campaign_targets(size_t limit = 48) {
  netsim::EventLoop loop;
  internet::Internet net(shared_snapshot(), loop);
  std::vector<scanner::QscanTarget> targets;
  for (const auto& host : net.population().hosts()) {
    if (!host.address.is_v4()) continue;
    targets.push_back({host.address, std::nullopt,
                       host.advertised_versions});
    if (targets.size() >= limit) break;
  }
  return targets;
}

struct CampaignReport {
  std::string json;
  std::string csv;
};

// The qscanner_cli --targets --report shard body, in miniature: rows
// stream into per-shard accumulator slots, the CSV is the merged row
// list, and the report is the shard-order fold.
CampaignReport run_report_campaign(
    const std::vector<scanner::QscanTarget>& targets, int jobs) {
  engine::CampaignOptions options;
  options.jobs = jobs;
  options.seed = kSeed;
  options.week = kWeek;
  options.population = kPopulation;
  options.snapshot = shared_snapshot();
  engine::Campaign campaign(options);

  // Under the dynamic default the slice count is the chunk count, not
  // jobs -- size every slot with slot_count.
  const size_t slots = campaign.slot_count(targets.size());
  std::vector<std::vector<scanner::QscanResult>> shard_rows(slots);
  engine::ShardFold<report::ReportAccumulator> fold(
      slots, [] { return report::ReportAccumulator("qscanner"); });
  campaign.run(targets.size(), [&](engine::ShardEnv& env) {
    auto& acc = fold.slot(env.shard_index);
    acc.attach_metrics(env.metrics);
    const auto& registry = env.internet->population().as_registry();
    scanner::QscanOptions qopt;
    qopt.seed = env.seed;
    qopt.metrics = env.metrics;
    scanner::QScanner qscanner(env.internet->network(), qopt);
    auto& rows = shard_rows[static_cast<size_t>(env.shard_index)];
    for (size_t i = env.range.begin; i < env.range.end; ++i) {
      if (!qscanner.compatible(targets[i])) continue;
      rows.push_back(qscanner.scan_one(targets[i]));
      acc.add_row(report::features_of(rows.back()),
                  registry.asn_for(rows.back().target.address));
    }
  });

  CampaignReport out;
  out.csv = std::string(report::kQscanCsvHeader) + "\n";
  for (const auto& result : engine::concat_shards(std::move(shard_rows)))
    out.csv += report::to_csv_row(report::features_of(result)) + "\n";
  std::ostringstream json;
  report::write_report_json(json, fold.merged());
  out.json = json.str();
  return out;
}

// The qreport_cli replay path, in miniature.
std::string replay_report(const std::string& csv) {
  internet::AsRegistry registry = internet::campaign_as_registry(240);
  report::ReportAccumulator acc("qscanner");
  auto rows = report::parse_csv(csv);
  EXPECT_GT(rows.size(), 1u);
  for (size_t i = 1; i < rows.size(); ++i) {
    auto features = report::features_from_csv(rows[i]);
    EXPECT_TRUE(features.has_value()) << "row " << i;
    if (!features) continue;
    auto addr = netsim::IpAddress::parse(features->address);
    EXPECT_TRUE(addr.has_value()) << "row " << i;
    if (!addr) continue;
    acc.add_row(*features, registry.asn_for(*addr));
  }
  std::ostringstream json;
  report::RenderOptions render;
  render.as_registry = &registry;
  report::write_report_json(json, acc, render);
  return json.str();
}

TEST(CampaignReport, ByteIdenticalAcrossJobsAndOfflineReplay) {
  auto targets = campaign_targets();
  auto baseline = run_report_campaign(targets, 1);
  EXPECT_FALSE(baseline.json.empty());

  for (int jobs : {2, 4, 8}) {
    auto run = run_report_campaign(targets, jobs);
    EXPECT_EQ(run.json, baseline.json) << "jobs " << jobs;
    EXPECT_EQ(run.csv, baseline.csv) << "jobs " << jobs;
  }

  // Replaying the merged CSV offline reproduces the streaming report
  // byte for byte -- the contract that lets weekly tracking regenerate
  // every artifact from archived CSV.
  EXPECT_EQ(replay_report(baseline.csv), baseline.json);
}

}  // namespace
