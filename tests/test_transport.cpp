// Transport-internals tests: flow control windows (RFC 9000 section 4),
// ACK range tracking and encoding (section 13.2/19.3), RTT estimation,
// loss detection and NewReno congestion control (RFC 9002).
#include <gtest/gtest.h>

#include "crypto/rng.h"
#include "internet/tp_catalog.h"
#include "quic/ack_tracker.h"
#include "quic/flow_control.h"
#include "quic/recovery.h"

namespace {

using namespace quic;

/// --- Flow control ----------------------------------------------------

TransportParameters small_params() {
  TransportParameters tp;
  tp.initial_max_data = 1000;
  tp.initial_max_stream_data_bidi_remote = 400;
  tp.initial_max_stream_data_uni = 100;
  tp.initial_max_streams_bidi = 2;
  tp.initial_max_streams_uni = 1;
  return tp;
}

TEST(FlowControl, StreamAndConnectionLimitsInteract) {
  ConnectionFlowController controller(small_params());
  auto s0 = controller.open_bidi_stream();
  ASSERT_TRUE(s0.has_value());
  EXPECT_EQ(*s0, 0u);
  // Stream window (400) binds before the connection window (1000).
  EXPECT_EQ(controller.sendable_on(*s0), 400u);
  EXPECT_EQ(controller.send_on(*s0, 1000), 400u);
  EXPECT_EQ(controller.connection_available(), 600u);

  auto s1 = controller.open_bidi_stream();
  ASSERT_TRUE(s1.has_value());
  EXPECT_EQ(*s1, 4u);  // client bidi ids step by 4
  EXPECT_EQ(controller.send_on(*s1, 1000), 400u);
  // Connection window now binds: 1000 - 800 = 200 left.
  EXPECT_EQ(controller.connection_available(), 200u);

  // Stream concurrency limit.
  EXPECT_FALSE(controller.open_bidi_stream().has_value());
}

TEST(FlowControl, MaxDataRaisesOnlyUpward) {
  ConnectionFlowController controller(small_params());
  auto s0 = controller.open_bidi_stream();
  controller.send_on(*s0, 400);
  controller.on_max_stream_data(*s0, 500);
  EXPECT_EQ(controller.sendable_on(*s0), 100u);
  controller.on_max_stream_data(*s0, 300);  // shrink attempt: ignored
  EXPECT_EQ(controller.sendable_on(*s0), 100u);
  controller.on_max_data(2000);
  EXPECT_EQ(controller.connection_available(), 1600u);
}

TEST(FlowControl, UniStreamsUseUniLimits) {
  ConnectionFlowController controller(small_params());
  auto u = controller.open_uni_stream();
  ASSERT_TRUE(u.has_value());
  EXPECT_EQ(*u, 2u);
  EXPECT_EQ(controller.send_on(*u, 1000), 100u);
  EXPECT_FALSE(controller.open_uni_stream().has_value());
}

TEST(FlowControl, FirstFlightBudgetMatchesHandComputation) {
  // 2 bidi streams x 400 B capped by 1000 B connection window -> 800.
  EXPECT_EQ(ConnectionFlowController::first_flight_budget(small_params(), 10),
            800u);
  // One stream only: 400.
  EXPECT_EQ(ConnectionFlowController::first_flight_budget(small_params(), 1),
            400u);
}

TEST(FlowControl, CloudflareCatalogBudget) {
  // Catalog config 0: 10 MiB connection window, 1 MiB per stream, 100
  // streams -> the connection window binds at 10 MiB.
  const auto& cf = internet::tp_catalog()[internet::kTpConfigCloudflare];
  EXPECT_EQ(ConnectionFlowController::first_flight_budget(cf.params, 100),
            10485760u);
  // With a single stream, the stream window binds.
  EXPECT_EQ(ConnectionFlowController::first_flight_budget(cf.params, 1),
            1048576u);
}

TEST(FlowControl, WindowViolationDetection) {
  FlowWindow window(100);
  EXPECT_FALSE(window.would_violate(100));
  EXPECT_TRUE(window.would_violate(101));
  window.consume(60);
  EXPECT_TRUE(window.would_violate(41));
  EXPECT_FALSE(window.would_violate(40));
}

/// --- ACK tracking -----------------------------------------------------

TEST(AckTracker, MergesAdjacentAndDetectsDuplicates) {
  AckTracker tracker;
  EXPECT_TRUE(tracker.on_packet(1));
  EXPECT_TRUE(tracker.on_packet(3));
  EXPECT_EQ(tracker.range_count(), 2u);
  EXPECT_TRUE(tracker.on_packet(2));  // bridges 1..3
  EXPECT_EQ(tracker.range_count(), 1u);
  EXPECT_FALSE(tracker.on_packet(2));  // duplicate
  EXPECT_TRUE(tracker.contains(1));
  EXPECT_TRUE(tracker.contains(3));
  EXPECT_FALSE(tracker.contains(4));
  EXPECT_EQ(tracker.largest(), 3u);
}

TEST(AckTracker, BuildAckEncodesGaps) {
  AckTracker tracker;
  for (uint64_t pn : {0, 1, 2, 5, 6, 9}) tracker.on_packet(pn);
  auto ack = tracker.build_ack(7);
  EXPECT_EQ(ack.largest_acknowledged, 9u);
  EXPECT_EQ(ack.first_ack_range, 0u);
  EXPECT_EQ(ack.ack_delay, 7u);
  ASSERT_EQ(ack.ranges.size(), 2u);
  // 9 -> gap to 5..6: gap = 9-0-6-2 = 1; length 1.
  EXPECT_EQ(ack.ranges[0].gap, 1u);
  EXPECT_EQ(ack.ranges[0].length, 1u);
  // 5..6 -> gap to 0..2: gap = 5-2-2 = 1? start=5, prev_start=5: 5-2-2=1.
  EXPECT_EQ(ack.ranges[1].gap, 1u);
  EXPECT_EQ(ack.ranges[1].length, 2u);

  // Round trip through the decoder.
  auto ranges = ack_ranges(ack);
  ASSERT_EQ(ranges.size(), 3u);
  EXPECT_EQ(ranges[0], (std::pair<uint64_t, uint64_t>{9, 9}));
  EXPECT_EQ(ranges[1], (std::pair<uint64_t, uint64_t>{5, 6}));
  EXPECT_EQ(ranges[2], (std::pair<uint64_t, uint64_t>{0, 2}));
}

TEST(AckTracker, RandomisedRangeReconstruction) {
  crypto::Rng rng(404);
  AckTracker tracker;
  std::set<uint64_t> truth;
  for (int i = 0; i < 300; ++i) {
    uint64_t pn = rng.below(120);
    EXPECT_EQ(tracker.on_packet(pn), truth.insert(pn).second);
  }
  auto ranges = ack_ranges(tracker.build_ack());
  std::set<uint64_t> reconstructed;
  for (auto [start, end] : ranges)
    for (uint64_t pn = start; pn <= end; ++pn) reconstructed.insert(pn);
  EXPECT_EQ(reconstructed, truth);
}

/// --- RTT estimation ---------------------------------------------------

TEST(RttEstimator, FirstSampleInitializes) {
  RttEstimator rtt;
  EXPECT_EQ(rtt.smoothed_rtt_us(), 333'000u);  // initial
  rtt.on_sample(100'000);
  EXPECT_EQ(rtt.smoothed_rtt_us(), 100'000u);
  EXPECT_EQ(rtt.rtt_var_us(), 50'000u);
  EXPECT_EQ(rtt.min_rtt_us(), 100'000u);
}

TEST(RttEstimator, SmoothingConverges) {
  RttEstimator rtt;
  for (int i = 0; i < 100; ++i) rtt.on_sample(80'000);
  EXPECT_NEAR(static_cast<double>(rtt.smoothed_rtt_us()), 80'000, 1'000);
  EXPECT_LT(rtt.rtt_var_us(), 2'000u);
}

TEST(RttEstimator, AckDelaySubtractedOnlyAboveMinRtt) {
  RttEstimator rtt;
  rtt.on_sample(100'000);
  rtt.on_sample(130'000, 20'000);  // adjusted to 110 000
  EXPECT_LT(rtt.smoothed_rtt_us(), 105'000u);
  // A sample at min_rtt with huge claimed delay is not adjusted below.
  rtt.on_sample(100'000, 90'000);
  EXPECT_GE(rtt.min_rtt_us(), 100'000u);
}

TEST(RttEstimator, PtoGrowsWithVariance) {
  RttEstimator stable, jittery;
  for (int i = 0; i < 20; ++i) {
    stable.on_sample(100'000);
    jittery.on_sample(i % 2 ? 40'000 : 160'000);
  }
  EXPECT_GT(jittery.pto_us(), stable.pto_us());
}

/// --- Congestion control -----------------------------------------------

TEST(CongestionController, SlowStartDoublesPerRtt) {
  CongestionController cc;
  uint64_t initial = cc.congestion_window();
  EXPECT_EQ(initial, 12'000u);  // 10 x 1200
  EXPECT_TRUE(cc.in_slow_start());
  cc.on_packet_sent(initial);
  cc.on_packet_acked(initial, /*sent_time_us=*/1000);
  EXPECT_EQ(cc.congestion_window(), 2 * initial);  // +acked bytes
}

TEST(CongestionController, LossHalvesOncePerEvent) {
  CongestionController cc;
  cc.on_packet_sent(24'000);
  uint64_t before = cc.congestion_window();
  cc.on_packets_lost(1200, /*largest_lost_sent_time_us=*/5000,
                     /*now_us=*/10'000);
  EXPECT_EQ(cc.congestion_window(), before / 2);
  // A second loss from the same flight (sent before recovery began)
  // must not halve again.
  cc.on_packets_lost(1200, /*largest_lost_sent_time_us=*/6000,
                     /*now_us=*/11'000);
  EXPECT_EQ(cc.congestion_window(), before / 2);
  // A loss from after recovery started is a new event.
  cc.on_packets_lost(1200, /*largest_lost_sent_time_us=*/20'000,
                     /*now_us=*/30'000);
  EXPECT_EQ(cc.congestion_window(), before / 4);
}

TEST(CongestionController, CongestionAvoidanceLinearGrowth) {
  CongestionController cc;
  cc.on_packet_sent(48'000);
  cc.on_packets_lost(1200, 1, 2);  // exit slow start
  EXPECT_FALSE(cc.in_slow_start());
  uint64_t cwnd = cc.congestion_window();
  // Acking one full cwnd grows the window by one datagram.
  cc.on_packet_sent(cwnd);
  cc.on_packet_acked(cwnd, /*sent_time_us=*/100);
  EXPECT_EQ(cc.congestion_window(), cwnd + 1200);
}

TEST(CongestionController, PersistentCongestionCollapses) {
  CongestionController cc;
  cc.on_packet_sent(50'000);
  cc.on_persistent_congestion();
  EXPECT_EQ(cc.congestion_window(), 2'400u);  // 2 x 1200 floor
}

TEST(CongestionController, NeverBelowMinimumWindow) {
  CongestionController cc;
  for (int i = 0; i < 10; ++i)
    cc.on_packets_lost(1200, static_cast<uint64_t>(100 * i + 100),
                       static_cast<uint64_t>(100 * i + 150));
  EXPECT_GE(cc.congestion_window(), 2'400u);
}

/// --- Loss detection ----------------------------------------------------

TEST(LossDetector, PacketThresholdDeclaresLoss) {
  LossDetector detector;
  for (uint64_t pn = 0; pn < 6; ++pn)
    detector.on_packet_sent(pn, 1200, pn * 1000);
  // Ack 3..5; packets 0..2 trail the largest acked by >= 3 -> 0,1,2
  // lost... packet threshold: largest(5) >= pn+3 -> pn <= 2.
  auto outcome = detector.on_ack({{3, 5}}, /*now_us=*/50'000,
                                 /*srtt=*/10'000);
  EXPECT_EQ(outcome.newly_acked.size(), 3u);
  ASSERT_EQ(outcome.lost.size(), 3u);
  EXPECT_EQ(outcome.lost[0].packet_number, 0u);
  EXPECT_EQ(detector.outstanding(), 0u);
}

TEST(LossDetector, RttSampleFromLargestAcked) {
  LossDetector detector;
  detector.on_packet_sent(0, 1200, 1'000);
  detector.on_packet_sent(1, 1200, 2'000);
  auto outcome = detector.on_ack({{0, 1}}, /*now_us=*/42'000, 10'000);
  ASSERT_TRUE(outcome.rtt_sample_us.has_value());
  EXPECT_EQ(*outcome.rtt_sample_us, 40'000u);  // vs packet 1 at t=2000
}

TEST(LossDetector, ReorderingWithinThresholdNotLost) {
  LossDetector detector;
  for (uint64_t pn = 0; pn < 4; ++pn)
    detector.on_packet_sent(pn, 1200, pn * 100);
  // Ack only packet 2: packets 0,1 trail by < 3 and are recent.
  auto outcome = detector.on_ack({{2, 2}}, /*now_us=*/500, /*srtt=*/100'000);
  EXPECT_TRUE(outcome.lost.empty());
  EXPECT_EQ(detector.outstanding(), 3u);  // 0, 1, 3 still out
}

}  // namespace
