// Differential tests for the sharded campaign engine: parallel must
// equal serial, byte for byte. Contracts from DESIGN.md ("Sharded
// campaign engine" / "Dynamic chunk scheduler"):
//
//   1. A --jobs 1 campaign is byte-identical to the pre-engine serial
//      code path (hand-rolled here: EventLoop + Internet + registry +
//      QlogDir built directly, no engine involved).
//   2. The merged rows and merged metrics JSON are identical for every
//      shard count K -- the output is a pure function of (seed, K) and
//      in fact does not depend on K at all.
//   3. Shard i of a K-way campaign is byte-identical (qlog traces and
//      per-shard metrics) to a serial run over that shard's target
//      slice with shard_seed(seed, i).
//   4. The dynamic scheduler changes nothing: merged rows, metrics,
//      report.json and qlog trees under --schedule dynamic are
//      byte-identical to the static/serial output for every jobs
//      count, chunk size and impairment profile -- the steal schedule
//      cannot leak into any output byte.
#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <map>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "crypto/cpu.h"
#include "engine/engine.h"
#include "internet/internet.h"
#include "netsim/impairment.h"
#include "report/report.h"
#include "scanner/qscanner.h"
#include "scanner/tcp_tls.h"
#include "telemetry/metrics.h"
#include "telemetry/trace.h"

namespace {

namespace fs = std::filesystem;

constexpr uint64_t kSeed = 0x5ca9;
constexpr int kWeek = 18;
constexpr internet::PopulationParams kPopulation{.dns_corpus_scale = 0.002};

// One immutable snapshot for every campaign in this file: the engine
// shares it across slices anyway, and reusing it across test cases
// keeps the differential sweeps fast.
std::shared_ptr<const internet::Snapshot> shared_snapshot() {
  static auto snapshot =
      std::make_shared<const internet::Snapshot>(kPopulation, kWeek);
  return snapshot;
}

// A fixed target list drawn from the synthetic population, the same
// way qscanner_cli --targets would load one from a file.
std::vector<scanner::QscanTarget> campaign_targets(size_t limit = 48) {
  netsim::EventLoop loop;
  internet::Internet net(shared_snapshot(), loop);
  std::vector<scanner::QscanTarget> targets;
  for (const auto& host : net.population().hosts()) {
    if (!host.address.is_v4()) continue;
    targets.push_back({host.address, std::nullopt,
                       host.advertised_versions});
    if (targets.size() >= limit) break;
  }
  return targets;
}

// Everything a row comparison should be sensitive to: outcome class,
// negotiated version, TLS, transport parameters, HTTP result.
std::string row_of(const scanner::QscanResult& result) {
  std::ostringstream out;
  out << result.target.address.to_string() << ','
      << result.target.sni.value_or("") << ','
      << scanner::to_string(result.outcome) << ',';
  if (result.outcome == scanner::QscanOutcome::kSuccess)
    out << quic::version_name(result.report.negotiated_version);
  out << ',' << result.report.tls.selected_alpn.value_or("") << ','
      << result.report.server_transport_params.initial_max_data.value_or(0)
      << ',' << result.server_header.value_or("") << ','
      << quic::to_string(result.report.protocol_error);
  return out.str();
}

struct CampaignRun {
  std::vector<std::string> rows;
  std::string metrics_json;
  std::vector<std::string> shard_metrics_json;
  std::string report_json;
};

std::string registry_json(const telemetry::MetricsRegistry& registry) {
  std::ostringstream out;
  registry.write_json(out);
  return out.str();
}

// The production shard body from qscanner_cli --targets --report, in
// miniature. `impairment` and `retries` mirror the CLI's
// --impair/--retries flags; `schedule`/`chunk_size` mirror
// --schedule/--chunk-size (static by default: the legacy tests in this
// file pin the PR-2 scheduler, the Dynamic* tests below sweep both).
CampaignRun run_campaign(const std::vector<scanner::QscanTarget>& targets,
                         int jobs, uint64_t seed,
                         const std::string& qlog_dir = "",
                         const std::string& impairment = "",
                         int retries = 0,
                         engine::Schedule schedule = engine::Schedule::kStatic,
                         size_t chunk_size = 0,
                         const std::string& adversary = "") {
  engine::CampaignOptions options;
  options.jobs = jobs;
  options.seed = seed;
  options.schedule = schedule;
  options.chunk_size = chunk_size;
  options.week = kWeek;
  options.population = kPopulation;
  options.snapshot = shared_snapshot();
  options.qlog_dir = qlog_dir;
  options.impairment = impairment;
  options.adversary = adversary;
  engine::Campaign campaign(options);

  const size_t slots = campaign.slot_count(targets.size());
  std::vector<std::vector<scanner::QscanResult>> shard_rows(slots);
  engine::ShardFold<report::ReportAccumulator> fold(
      slots, [] { return report::ReportAccumulator("qscanner"); });
  campaign.run(targets.size(), [&](engine::ShardEnv& env) {
    auto& acc = fold.slot(env.shard_index);
    const auto& registry = env.internet->population().as_registry();
    scanner::QscanOptions qopt;
    qopt.seed = env.seed;
    qopt.metrics = env.metrics;
    qopt.trace_factory = env.trace_factory;
    qopt.retry.max_attempts = 1 + retries;
    scanner::QScanner qscanner(env.internet->network(), qopt);
    auto& rows = shard_rows[static_cast<size_t>(env.shard_index)];
    for (size_t i = env.range.begin; i < env.range.end; ++i) {
      if (!qscanner.compatible(targets[i])) continue;
      rows.push_back(qscanner.scan_one(targets[i]));
      acc.add_row(report::features_of(rows.back()),
                  registry.asn_for(rows.back().target.address));
    }
  });

  CampaignRun run;
  for (const auto& result : engine::concat_shards(std::move(shard_rows)))
    run.rows.push_back(row_of(result));
  run.metrics_json = registry_json(campaign.metrics());
  for (size_t s = 0; s < slots; ++s)
    run.shard_metrics_json.push_back(
        registry_json(campaign.shard_metrics(static_cast<int>(s))));
  std::ostringstream report_out;
  report::write_report_json(report_out, fold.merged());
  run.report_json = report_out.str();
  return run;
}

// The pre-engine serial path, reconstructed with no engine code at
// all: this is exactly what the CLIs did before the campaign runner
// existed, and what a --jobs 1 campaign must reproduce byte for byte.
CampaignRun run_serial_baseline(
    const std::vector<scanner::QscanTarget>& targets, uint64_t seed,
    const std::string& qlog_dir = "", const std::string& impairment = "",
    int retries = 0, const std::string& adversary = "") {
  netsim::EventLoop loop;
  internet::Internet net(kPopulation, kWeek, loop);
  telemetry::MetricsRegistry metrics;
  loop.set_metrics(&metrics);
  net.network().set_metrics(&metrics);
  // Same position run_shard applies it: after the metrics hookup, before
  // any scanner traffic, so the fabric's counters land in the registry.
  if (!impairment.empty())
    net.apply_impairment(*netsim::find_impairment_profile(impairment));
  // The engine resolves QREPRO_ADVERSARY for an unset option; the
  // baseline must follow suit or the CI sweep (verify_all.sh runs this
  // battery with QREPRO_ADVERSARY=broken) would compare a hostile
  // campaign against a compliant baseline.
  std::string adversary_name = adversary;
  if (adversary_name.empty())
    if (const char* env = std::getenv("QREPRO_ADVERSARY"))
      adversary_name = env;
  if (!adversary_name.empty())
    net.apply_adversary(*internet::find_adversary_profile(adversary_name));

  std::optional<telemetry::QlogDir> qlog;
  if (!qlog_dir.empty()) qlog.emplace(qlog_dir);

  scanner::QscanOptions qopt;
  qopt.seed = seed;
  qopt.metrics = &metrics;
  qopt.retry.max_attempts = 1 + retries;
  if (qlog) qopt.trace_factory = qlog->factory();
  scanner::QScanner qscanner(net.network(), qopt);

  CampaignRun run;
  for (const auto& target : targets) {
    if (!qscanner.compatible(target)) continue;
    run.rows.push_back(row_of(qscanner.scan_one(target)));
  }
  run.metrics_json = registry_json(metrics);
  return run;
}

std::map<std::string, std::string> dir_snapshot(const fs::path& root) {
  std::map<std::string, std::string> files;
  if (!fs::exists(root)) return files;
  for (const auto& entry : fs::recursive_directory_iterator(root)) {
    if (!entry.is_regular_file()) continue;
    std::ifstream in(entry.path(), std::ios::binary);
    std::ostringstream text;
    text << in.rdbuf();
    files[fs::relative(entry.path(), root).string()] = text.str();
  }
  return files;
}

fs::path fresh_dir(const std::string& name) {
  fs::path dir = fs::path(testing::TempDir()) / name;
  fs::remove_all(dir);
  return dir;
}

TEST(EngineDifferential, Jobs1MatchesPreEngineSerialPathByteForByte) {
  auto targets = campaign_targets();
  ASSERT_GE(targets.size(), 16u);

  auto engine_dir = fresh_dir("engine_jobs1_qlog");
  auto serial_dir = fresh_dir("engine_serial_qlog");
  auto engine_run = run_campaign(targets, 1, kSeed, engine_dir.string());
  auto serial_run = run_serial_baseline(targets, kSeed, serial_dir.string());

  EXPECT_FALSE(engine_run.rows.empty());
  EXPECT_EQ(engine_run.rows, serial_run.rows);
  EXPECT_EQ(engine_run.metrics_json, serial_run.metrics_json);

  // A single-shard campaign writes its traces directly into the qlog
  // root (no shard00/ subdirectory) so files land exactly where the
  // serial CLIs put them.
  auto engine_traces = dir_snapshot(engine_dir);
  auto serial_traces = dir_snapshot(serial_dir);
  EXPECT_FALSE(engine_traces.empty());
  EXPECT_EQ(engine_traces, serial_traces);
}

TEST(EngineDifferential, MergedOutputIdenticalAcrossShardCounts) {
  auto targets = campaign_targets();
  auto serial = run_campaign(targets, 1, kSeed);
  ASSERT_FALSE(serial.rows.empty());

  for (int jobs : {2, 4, 8}) {
    SCOPED_TRACE("jobs=" + std::to_string(jobs));
    auto sharded = run_campaign(targets, jobs, kSeed);
    EXPECT_EQ(sharded.rows, serial.rows);
    EXPECT_EQ(sharded.metrics_json, serial.metrics_json);
  }
}

TEST(EngineDifferential, PerShardOutputMatchesSerialRunOfShardSeed) {
  auto targets = campaign_targets();
  constexpr int kJobs = 4;

  auto campaign_dir = fresh_dir("engine_jobs4_qlog");
  auto sharded = run_campaign(targets, kJobs, kSeed, campaign_dir.string());

  auto ranges = engine::shard_ranges(targets.size(), kJobs);
  for (int s = 0; s < kJobs; ++s) {
    SCOPED_TRACE("shard=" + std::to_string(s));
    std::vector<scanner::QscanTarget> slice(
        targets.begin() + static_cast<ptrdiff_t>(ranges[s].begin),
        targets.begin() + static_cast<ptrdiff_t>(ranges[s].end));
    auto slice_dir = fresh_dir("engine_shard_serial_qlog");
    auto serial = run_serial_baseline(
        slice, engine::shard_seed(kSeed, static_cast<uint32_t>(s)),
        slice_dir.string());

    // Per-shard metrics equal a serial run of the slice...
    EXPECT_EQ(sharded.shard_metrics_json[static_cast<size_t>(s)],
              serial.metrics_json);

    // ...and the shard's qlog subtree is byte-identical to the serial
    // run's trace directory.
    char shard_name[16];
    std::snprintf(shard_name, sizeof shard_name, "shard%02d", s);
    auto shard_traces = dir_snapshot(campaign_dir / shard_name);
    auto serial_traces = dir_snapshot(slice_dir);
    EXPECT_FALSE(shard_traces.empty());
    EXPECT_EQ(shard_traces, serial_traces);
  }
}

TEST(EngineDifferential, ImpairedJobs1MatchesSerialBaselineByteForByte) {
  // The fault fabric under the engine: a --jobs 1 campaign with
  // --impair/--retries must still be byte-identical to the hand-rolled
  // serial path with the same profile applied at the same point.
  auto targets = campaign_targets();
  auto engine_dir = fresh_dir("engine_impaired_jobs1_qlog");
  auto serial_dir = fresh_dir("engine_impaired_serial_qlog");
  auto engine_run =
      run_campaign(targets, 1, kSeed, engine_dir.string(), "hostile", 2);
  auto serial_run =
      run_serial_baseline(targets, kSeed, serial_dir.string(), "hostile", 2);

  EXPECT_FALSE(engine_run.rows.empty());
  EXPECT_EQ(engine_run.rows, serial_run.rows);
  EXPECT_EQ(engine_run.metrics_json, serial_run.metrics_json);
  auto engine_traces = dir_snapshot(engine_dir);
  auto serial_traces = dir_snapshot(serial_dir);
  EXPECT_FALSE(engine_traces.empty());
  EXPECT_EQ(engine_traces, serial_traces);
}

TEST(EngineDifferential, ImpairedMergedOutputIdenticalAcrossShardCounts) {
  // K-invariance under impairment (acceptance criterion): the fabric's
  // counter-based RNG and the per-target retry jitter give the same
  // drops/corruption/backoffs no matter how targets are sharded, so the
  // merged rows and metrics cannot depend on --jobs.
  auto targets = campaign_targets();
  for (const std::string profile : {"bursty", "hostile", "throttled"}) {
    SCOPED_TRACE("profile=" + profile);
    auto serial = run_campaign(targets, 1, kSeed, "", profile, 2);
    ASSERT_FALSE(serial.rows.empty());
    for (int jobs : {2, 4, 8}) {
      SCOPED_TRACE("jobs=" + std::to_string(jobs));
      auto sharded = run_campaign(targets, jobs, kSeed, "", profile, 2);
      EXPECT_EQ(sharded.rows, serial.rows);
      EXPECT_EQ(sharded.metrics_json, serial.metrics_json);
    }
  }
}

TEST(EngineDifferential, DynamicMatchesStaticAcrossJobsChunkSizesProfiles) {
  // The tentpole contract: under --schedule dynamic the merged CSV
  // rows, merged metrics JSON and report.json are byte-identical to
  // the static serial baseline for every jobs count x chunk size x
  // impairment profile. Chunk size changes the partition and the
  // per-chunk seeds, yet per-target output is invariant to its world,
  // so even the chunk size must not show up in merged output.
  auto targets = campaign_targets(24);
  const size_t n = targets.size();
  ASSERT_GE(n, 16u);

  for (const std::string profile : {"", "hostile", "throttled"}) {
    SCOPED_TRACE("profile=" + (profile.empty() ? "clean" : profile));
    const int retries = profile.empty() ? 0 : 1;
    auto baseline = run_campaign(targets, 1, kSeed, "", profile, retries,
                                 engine::Schedule::kStatic);
    ASSERT_FALSE(baseline.rows.empty());
    for (size_t chunk : {size_t{1}, size_t{7}, size_t{64}, n}) {
      SCOPED_TRACE("chunk_size=" + std::to_string(chunk));
      for (int jobs : {1, 2, 4, 8}) {
        SCOPED_TRACE("jobs=" + std::to_string(jobs));
        auto dynamic_run =
            run_campaign(targets, jobs, kSeed, "", profile, retries,
                         engine::Schedule::kDynamic, chunk);
        EXPECT_EQ(dynamic_run.rows, baseline.rows);
        EXPECT_EQ(dynamic_run.metrics_json, baseline.metrics_json);
        EXPECT_EQ(dynamic_run.report_json, baseline.report_json);
      }
    }
  }
}

TEST(EngineDifferential, DynamicQlogTreesIdenticalAcrossJobsForFixedChunk) {
  // qlog trees fix the chunk partition (one chunkNNNN/ subtree per
  // chunk), so for a FIXED chunk size the whole tree must be
  // byte-identical across jobs counts and steal schedules. The auto
  // chunk size depends on jobs, which is why tree comparisons require
  // an explicit --chunk-size; merged CSV/metrics are chunk-size
  // invariant either way.
  auto targets = campaign_targets(24);
  constexpr size_t kChunk = 7;

  auto baseline_dir = fresh_dir("engine_dynamic_qlog_j1");
  auto baseline = run_campaign(targets, 1, kSeed, baseline_dir.string(),
                               "hostile", 1, engine::Schedule::kDynamic,
                               kChunk);
  auto baseline_traces = dir_snapshot(baseline_dir);
  ASSERT_FALSE(baseline_traces.empty());
  // 24 targets in chunks of 7 -> chunk0000..chunk0003 subtrees.
  EXPECT_NE(baseline_traces.begin()->first.find("chunk000"),
            std::string::npos);

  for (int jobs : {2, 4, 8}) {
    SCOPED_TRACE("jobs=" + std::to_string(jobs));
    auto dir = fresh_dir("engine_dynamic_qlog_j" + std::to_string(jobs));
    auto run = run_campaign(targets, jobs, kSeed, dir.string(), "hostile", 1,
                            engine::Schedule::kDynamic, kChunk);
    EXPECT_EQ(run.rows, baseline.rows);
    EXPECT_EQ(dir_snapshot(dir), baseline_traces);
  }
}

TEST(EngineDifferential, SingleChunkDynamicMatchesSerialPathByteForByte) {
  // chunk_seed(seed, 0) == seed and a single-chunk campaign writes
  // qlog into the root directory, so dynamic with chunk_size >= n is
  // byte-identical to the hand-rolled pre-engine serial path --
  // including the trace tree, which has no chunk subdirectories.
  auto targets = campaign_targets(24);
  auto dynamic_dir = fresh_dir("engine_dynamic_single_qlog");
  auto serial_dir = fresh_dir("engine_dynamic_serial_qlog");
  auto dynamic_run =
      run_campaign(targets, 4, kSeed, dynamic_dir.string(), "", 0,
                   engine::Schedule::kDynamic, targets.size());
  auto serial_run = run_serial_baseline(targets, kSeed, serial_dir.string());

  EXPECT_FALSE(dynamic_run.rows.empty());
  EXPECT_EQ(dynamic_run.rows, serial_run.rows);
  EXPECT_EQ(dynamic_run.metrics_json, serial_run.metrics_json);
  auto dynamic_traces = dir_snapshot(dynamic_dir);
  EXPECT_FALSE(dynamic_traces.empty());
  EXPECT_EQ(dynamic_traces, dir_snapshot(serial_dir));
}

TEST(EngineDifferential, PerChunkOutputMatchesSerialRunOfChunkSeed) {
  // Chunk i of a dynamic campaign is byte-identical (per-chunk metrics)
  // to a serial run over that chunk's target slice with
  // chunk_seed(seed, i) -- the dynamic analogue of the per-shard
  // contract above, and the property that makes chunk output
  // independent of which worker ran it.
  auto targets = campaign_targets(24);
  constexpr size_t kChunk = 7;
  auto dynamic_run = run_campaign(targets, 4, kSeed, "", "", 0,
                                  engine::Schedule::kDynamic, kChunk);

  auto ranges = engine::chunk_ranges(targets.size(), kChunk);
  ASSERT_EQ(dynamic_run.shard_metrics_json.size(), ranges.size());
  for (size_t c = 0; c < ranges.size(); ++c) {
    SCOPED_TRACE("chunk=" + std::to_string(c));
    std::vector<scanner::QscanTarget> slice(
        targets.begin() + static_cast<ptrdiff_t>(ranges[c].begin),
        targets.begin() + static_cast<ptrdiff_t>(ranges[c].end));
    auto serial = run_serial_baseline(slice, engine::chunk_seed(kSeed, c));
    EXPECT_EQ(dynamic_run.shard_metrics_json[c], serial.metrics_json);
  }
}

TEST(EngineDifferential, ImpairedRunIsReproducible) {
  // Same seed, same profile, two fresh processes-worth of state: the
  // run must be bit-for-bit repeatable (no wall clock, no ASLR-derived
  // hashing, no global RNG leaks into the fabric).
  auto targets = campaign_targets();
  auto first = run_campaign(targets, 1, kSeed, "", "hostile", 1);
  auto second = run_campaign(targets, 1, kSeed, "", "hostile", 1);
  EXPECT_EQ(first.rows, second.rows);
  EXPECT_EQ(first.metrics_json, second.metrics_json);
}

TEST(EngineDifferential, UnknownImpairmentProfileRejectedUpFront) {
  engine::CampaignOptions options;
  options.jobs = 1;
  options.seed = kSeed;
  options.week = kWeek;
  options.population = kPopulation;
  options.impairment = "apocalyptic";
  EXPECT_THROW(engine::Campaign campaign(options), std::invalid_argument);
}

TEST(EngineDifferential, UnknownAdversaryProfileRejectedUpFront) {
  engine::CampaignOptions options;
  options.jobs = 1;
  options.seed = kSeed;
  options.week = kWeek;
  options.population = kPopulation;
  options.adversary = "chaotic-evil";
  EXPECT_THROW(engine::Campaign campaign(options), std::invalid_argument);
}

TEST(EngineDifferential, AdversaryJobs1MatchesSerialBaselineByteForByte) {
  // The misbehaving-endpoint overlay under the engine: a --jobs 1
  // campaign with --adversary broken must reproduce the hand-rolled
  // serial path (apply_adversary called directly) byte for byte.
  auto targets = campaign_targets();
  auto serial = run_serial_baseline(targets, kSeed, "", "", 1, "broken");
  auto engine_run = run_campaign(targets, 1, kSeed, "", "", 1,
                                 engine::Schedule::kStatic, 0, "broken");
  EXPECT_EQ(engine_run.rows, serial.rows);
  EXPECT_EQ(engine_run.metrics_json, serial.metrics_json);
}

TEST(EngineDifferential, AdversaryMergedOutputInvariantAcrossJobsSchedules) {
  // Per-host misbehavior plans key on (population seed, host address)
  // only, so the merged rows, metrics and report.json under any
  // adversary profile are invariant across jobs counts and both
  // schedules -- misclassification drift across shard partitions would
  // surface here as a row diff.
  auto targets = campaign_targets();
  for (const char* profile : {"sloppy", "malicious"}) {
    SCOPED_TRACE(profile);
    auto baseline = run_campaign(targets, 1, kSeed, "", "hostile", 1,
                                 engine::Schedule::kStatic, 0, profile);
    for (auto schedule :
         {engine::Schedule::kStatic, engine::Schedule::kDynamic}) {
      for (int jobs : {2, 4, 8}) {
        SCOPED_TRACE(std::string(engine::schedule_name(schedule)) +
                     " jobs=" + std::to_string(jobs));
        auto run = run_campaign(targets, jobs, kSeed, "", "hostile", 1,
                                schedule, 7, profile);
        EXPECT_EQ(run.rows, baseline.rows);
        EXPECT_EQ(run.metrics_json, baseline.metrics_json);
        EXPECT_EQ(run.report_json, baseline.report_json);
      }
    }
  }
}

TEST(EngineDifferential, EmptyTailShardsLeaveOutputUnchanged) {
  // More shards than targets: the tail shards run with empty ranges
  // and must not disturb the merged rows or metrics.
  auto targets = campaign_targets(5);
  ASSERT_EQ(targets.size(), 5u);
  auto serial = run_campaign(targets, 1, kSeed);
  auto oversharded = run_campaign(targets, 7, kSeed);
  EXPECT_EQ(oversharded.rows, serial.rows);
  EXPECT_EQ(oversharded.metrics_json, serial.metrics_json);
}

TEST(EngineDifferential, TcpTlsCampaignShardsIdentically) {
  // The fourth scanner family, TLS-over-TCP (the Goscanner analogue),
  // runs through the same engine: merged rows and merged metrics must
  // not depend on the shard count either.
  std::vector<scanner::TcpTarget> targets;
  {
    netsim::EventLoop loop;
    internet::Internet net(kPopulation, kWeek, loop);
    for (const auto& host : net.population().hosts()) {
      if (!host.address.is_v4()) continue;
      targets.push_back({host.address, std::nullopt});
      if (targets.size() >= 40) break;
    }
  }
  ASSERT_GE(targets.size(), 16u);

  // Runs under the default (dynamic) schedule: slots are chunk-count
  // sized via slot_count, and rows concat in chunk order.
  auto run = [&](int jobs) {
    engine::CampaignOptions options;
    options.jobs = jobs;
    options.seed = kSeed;
    options.week = kWeek;
    options.population = kPopulation;
    options.snapshot = shared_snapshot();
    engine::Campaign campaign(options);
    std::vector<std::vector<std::string>> shard_rows(
        campaign.slot_count(targets.size()));
    campaign.run(targets.size(), [&](engine::ShardEnv& env) {
      scanner::TcpTlsOptions topt;
      topt.seed = env.seed;
      topt.metrics = env.metrics;
      scanner::TcpTlsScanner tcp(env.internet->network(), topt);
      auto& rows = shard_rows[static_cast<size_t>(env.shard_index)];
      for (size_t i = env.range.begin; i < env.range.end; ++i) {
        auto result = tcp.scan_one(targets[i]);
        std::ostringstream row;
        row << result.target.address.to_string() << ','
            << result.port_open << ',' << result.handshake_ok << ','
            << result.http_ok << ',' << result.alt_svc.size();
        rows.push_back(row.str());
      }
    });
    return std::make_pair(engine::concat_shards(std::move(shard_rows)),
                          registry_json(campaign.metrics()));
  };

  auto serial = run(1);
  EXPECT_FALSE(serial.first.empty());
  for (int jobs : {3, 8}) {
    SCOPED_TRACE("jobs=" + std::to_string(jobs));
    auto sharded = run(jobs);
    EXPECT_EQ(sharded.first, serial.first);
    EXPECT_EQ(sharded.second, serial.second);
  }
}

TEST(EngineDifferential, CampaignRunIsSingleUse) {
  engine::Campaign campaign({.jobs = 2, .seed = 1, .week = kWeek,
                             .population = kPopulation, .qlog_dir = {}});
  campaign.run(0, [](engine::ShardEnv&) {});
  EXPECT_THROW(campaign.run(0, [](engine::ShardEnv&) {}),
               std::logic_error);
}


TEST(EngineDifferential, CryptoBackendsProduceIdenticalCampaignOutput) {
  // The AES-GCM kernel backend (DESIGN.md "Crypto backends") may only
  // change wall-clock, never an output byte: merged rows, merged and
  // per-shard metrics JSON, report.json and the qlog trees must be
  // byte-identical between the portable reference backend and the
  // fastest backend this host offers, for every jobs x schedule
  // combination. Every QUIC handshake in the campaign runs AES-GCM, so
  // a single diverging keystream or tag byte would cascade into these
  // artifacts.
  crypto::Backend contender = crypto::best_backend();
  if (contender == crypto::Backend::kPortable)
    contender = crypto::Backend::kPortableBatched;
  auto targets = campaign_targets();

  struct Config {
    int jobs;
    engine::Schedule schedule;
  };
  for (const Config& config :
       {Config{1, engine::Schedule::kStatic},
        Config{1, engine::Schedule::kDynamic},
        Config{4, engine::Schedule::kStatic},
        Config{4, engine::Schedule::kDynamic}}) {
    SCOPED_TRACE("jobs=" + std::to_string(config.jobs) + " schedule=" +
                 engine::schedule_name(config.schedule));

    auto portable_dir = fresh_dir("engine_backend_portable_qlog");
    CampaignRun reference;
    {
      crypto::ScopedBackendOverride force(crypto::Backend::kPortable);
      reference = run_campaign(targets, config.jobs, kSeed,
                               portable_dir.string(), "", 0,
                               config.schedule);
    }
    EXPECT_FALSE(reference.rows.empty());

    auto contender_dir = fresh_dir("engine_backend_contender_qlog");
    CampaignRun run;
    {
      crypto::ScopedBackendOverride force(contender);
      run = run_campaign(targets, config.jobs, kSeed,
                         contender_dir.string(), "", 0, config.schedule);
    }

    EXPECT_EQ(run.rows, reference.rows);
    EXPECT_EQ(run.metrics_json, reference.metrics_json);
    EXPECT_EQ(run.shard_metrics_json, reference.shard_metrics_json);
    EXPECT_EQ(run.report_json, reference.report_json);
    auto reference_traces = dir_snapshot(portable_dir);
    EXPECT_FALSE(reference_traces.empty());
    EXPECT_EQ(dir_snapshot(contender_dir), reference_traces);
  }
}

}  // namespace
