// Tests for the bench orchestration layer: the discovery pipeline and
// target assembly every table/figure binary is built on. Runs on a
// shrunken corpus for speed.
#include <gtest/gtest.h>

#include "common.h"
#include "http/alpn.h"

namespace {

const bench::Discovery& discovery() {
  static bench::Discovery d = [] {
    bench::DiscoveryOptions options;
    options.dns_corpus_scale = 0.01;
    options.tcp_domain_stride = 3;
    return bench::run_discovery(18, options);
  }();
  return d;
}

TEST(Discovery, AllChannelsProduceFindings) {
  const auto& d = discovery();
  EXPECT_GT(d.zmap_v4.size(), 1000u);
  EXPECT_GT(d.zmap_v6.size(), 100u);
  EXPECT_GT(d.alt_svc.size(), 100u);
  EXPECT_GT(d.https_rr.size(), 100u);
  EXPECT_EQ(d.week, 18);
}

TEST(Discovery, AddressSetsRespectFamilies) {
  const auto& d = discovery();
  for (const auto& addr : d.zmap_addrs(false)) EXPECT_TRUE(addr.is_v4());
  for (const auto& addr : d.zmap_addrs(true)) EXPECT_TRUE(addr.is_v6());
  for (const auto& addr : d.alt_svc_addrs(false)) EXPECT_TRUE(addr.is_v4());
  for (const auto& addr : d.https_rr_addrs(true)) EXPECT_TRUE(addr.is_v6());
}

TEST(Discovery, AltSvcFindingsOnlyCarryQuicTokens) {
  for (const auto& finding : discovery().alt_svc) {
    ASSERT_FALSE(finding.alpn_tokens.empty());
    for (const auto& token : finding.alpn_tokens)
      EXPECT_TRUE(http::alpn_implies_quic(token)) << token;
  }
}

TEST(SniTargets, CombinedIsDedupedUnionOfSources) {
  auto targets = bench::assemble_sni_targets(discovery(), /*v6=*/false);
  EXPECT_FALSE(targets.from_zmap_dns.empty());
  EXPECT_FALSE(targets.from_alt_svc.empty());
  EXPECT_FALSE(targets.from_https_rr.empty());
  // No duplicate (address, sni) pairs in the union.
  std::set<std::pair<std::string, std::string>> seen;
  for (const auto& target : targets.combined) {
    EXPECT_TRUE(seen.insert({target.address.to_string(),
                             target.sni.value_or("")})
                    .second);
    EXPECT_TRUE(target.sni.has_value());
    EXPECT_TRUE(target.address.is_v4());
  }
  // The union is at most the sum and at least the largest source.
  size_t sum = targets.from_zmap_dns.size() + targets.from_alt_svc.size() +
               targets.from_https_rr.size();
  EXPECT_LE(targets.combined.size(), sum);
  EXPECT_GE(targets.combined.size(),
            std::max({targets.from_zmap_dns.size(),
                      targets.from_alt_svc.size(),
                      targets.from_https_rr.size()}));
}

TEST(SniTargets, ZmapDnsTargetsCarryVersionHints) {
  auto targets = bench::assemble_sni_targets(discovery(), false);
  for (const auto& target : targets.from_zmap_dns)
    EXPECT_FALSE(target.version_hint.empty());
}

TEST(NoSniTargets, OnePerZmapAddress) {
  auto targets = bench::assemble_no_sni_targets(discovery(), false);
  EXPECT_EQ(targets.size(), discovery().zmap_v4.size());
  for (const auto& target : targets) EXPECT_FALSE(target.sni.has_value());
}

TEST(Tally, SharesSumToHundred) {
  std::vector<scanner::QscanResult> results(10);
  results[0].outcome = scanner::QscanOutcome::kSuccess;
  results[1].outcome = scanner::QscanOutcome::kSuccess;
  results[2].outcome = scanner::QscanOutcome::kTimeout;
  for (size_t i = 3; i < 10; ++i)
    results[i].outcome = scanner::QscanOutcome::kCryptoError0x128;
  auto shares = bench::tally(results);
  EXPECT_EQ(shares.total, 10u);
  EXPECT_DOUBLE_EQ(shares.share(scanner::QscanOutcome::kSuccess), 20.0);
  EXPECT_DOUBLE_EQ(shares.share(scanner::QscanOutcome::kTimeout), 10.0);
  EXPECT_DOUBLE_EQ(shares.share(scanner::QscanOutcome::kCryptoError0x128),
                   70.0);
  EXPECT_DOUBLE_EQ(shares.share(scanner::QscanOutcome::kVersionMismatch),
                   0.0);
}

TEST(Discovery, TcpStrideScalesWorkNotShape) {
  // A strided TCP pass must still find the dominant Alt-Svc set.
  analysis::SetCounter sets;
  for (const auto& finding : discovery().alt_svc) {
    if (finding.address.is_v6()) continue;
    sets.add(http::alpn_set_name(finding.alpn_tokens));
  }
  auto ranked = sets.ranked();
  ASSERT_FALSE(ranked.empty());
  EXPECT_EQ(ranked[0].key, "h3-27,h3-28,h3-29");  // Cloudflare's set
}

}  // namespace
