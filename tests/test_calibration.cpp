// Calibration pinning: the week-18 population marginals that every
// table and figure depends on, asserted against the paper-derived
// targets (DESIGN.md section 7). A population edit that silently
// shifts a headline statistic fails here, not in a bench someone has
// to eyeball.
#include <gtest/gtest.h>

#include "internet/internet.h"

namespace {

using namespace internet;

const Population& week18() {
  static Population population({.dns_corpus_scale = 0.01}, 18);
  return population;
}

struct GroupCounts {
  size_t v4 = 0, v6 = 0;
};

std::map<std::string, GroupCounts> count_groups() {
  std::map<std::string, GroupCounts> counts;
  for (const auto& host : week18().hosts()) {
    auto& entry = counts[host.group];
    if (host.address.is_v4())
      ++entry.v4;
    else
      ++entry.v6;
  }
  return counts;
}

TEST(Calibration, ZmapVisibleMassNearPaperScale) {
  size_t v4 = 0, v6 = 0;
  for (const auto& host : week18().hosts()) {
    if (!host.quic_enabled() || !host.respond_to_vn || host.udp_filtered)
      continue;
    if (host.address.is_v4())
      ++v4;
    else
      ++v6;
  }
  // Paper week 18: 2 134 964 IPv4 / 210 997 IPv6 at 1:1000.
  EXPECT_NEAR(static_cast<double>(v4), 2135.0, 600.0);
  EXPECT_NEAR(static_cast<double>(v6), 211.0, 90.0);
}

TEST(Calibration, CloudflareLeadsGoogleSecond) {
  auto counts = count_groups();
  size_t cloudflare = counts["cloudflare"].v4 + counts["cloudflare-idle"].v4;
  size_t google = counts["google"].v4 + counts["google-mismatch"].v4 +
                  counts["google-stall"].v4 + counts["google-legacy"].v4;
  size_t akamai = counts["akamai"].v4;
  size_t fastly = counts["fastly"].v4;
  // Paper Table 2 ordering: CF 676 k > Google 510 k > Akamai 321 k >
  // Fastly 233 k.
  EXPECT_GT(cloudflare, google);
  EXPECT_GT(google, akamai);
  EXPECT_GT(akamai, fastly);
  // And the ratios stay within a factor ~1.5 of the paper's.
  EXPECT_NEAR(static_cast<double>(cloudflare) / static_cast<double>(google),
              676.0 / 510.0, 0.6);
}

TEST(Calibration, GoogleMismatchShareMatchesPaper) {
  auto counts = count_groups();
  size_t mismatch =
      counts["google-mismatch"].v4 + counts["google-mismatch-cloud"].v4;
  size_t total = 0;
  for (const auto& host : week18().hosts())
    if (host.address.is_v4() && host.quic_enabled() && host.respond_to_vn &&
        !host.udp_filtered)
      ++total;
  // Paper: ~9 % of stateful no-SNI IPv4 targets fail with a version
  // mismatch, 99 % of them at Google.
  double share = static_cast<double>(mismatch) / static_cast<double>(total);
  EXPECT_GT(share, 0.06);
  EXPECT_LT(share, 0.12);
}

TEST(Calibration, HostingerFleetIsV6AltSvcOnly) {
  auto counts = count_groups();
  EXPECT_NEAR(static_cast<double>(counts["hostinger"].v6), 195.0, 20.0);
  for (const auto& host : week18().hosts()) {
    if (host.group != "hostinger") continue;
    EXPECT_FALSE(host.respond_to_vn);
    EXPECT_FALSE(host.alt_svc_alpn.empty());
  }
}

TEST(Calibration, PaddingLaxMassConcentratedInOneAs) {
  size_t lax_total = 0, lax_top_as = 0;
  std::map<uint32_t, size_t> by_as;
  for (const auto& host : week18().hosts()) {
    if (!host.address.is_v4() || host.require_padding) continue;
    if (!host.quic_enabled() || !host.respond_to_vn) continue;
    ++lax_total;
    ++by_as[host.asn];
  }
  for (const auto& [asn, count] : by_as)
    lax_top_as = std::max(lax_top_as, count);
  ASSERT_GT(lax_total, 0u);
  // Paper section 3.1: 95.4 % of unpadded responders share one AS.
  EXPECT_GT(static_cast<double>(lax_top_as) / static_cast<double>(lax_total),
            0.9);
  // And the unpadded/padded ratio lands near 11.3 %.
  size_t padded_total = 0;
  for (const auto& host : week18().hosts())
    if (host.address.is_v4() && host.quic_enabled() && host.respond_to_vn &&
        !host.udp_filtered)
      ++padded_total;
  double rate = static_cast<double>(lax_total) /
                static_cast<double>(padded_total);
  EXPECT_GT(rate, 0.07);
  EXPECT_LT(rate, 0.16);
}

TEST(Calibration, DomainMassesScaleOneToThousand) {
  size_t cf_domains = 0, total = week18().domains().size();
  for (const auto& domain : week18().domains()) {
    if (domain.v4_hosts.empty()) continue;
    const auto& host = week18().hosts()[domain.v4_hosts[0]];
    if (host.group == "cloudflare") ++cf_domains;
  }
  // Paper: 23.8 M Cloudflare-joined domains of ~31 M total (1:1000).
  EXPECT_NEAR(static_cast<double>(cf_domains), 23844.0, 3000.0);
  EXPECT_GT(total, 30000u);
  EXPECT_LT(total, 50000u);
}

TEST(Calibration, HttpsRrMassAtWeek18) {
  size_t https = 0;
  for (const auto& domain : week18().domains())
    if (domain.https_rr_since_week > 0 && domain.https_rr_since_week <= 18)
      ++https;
  // Paper: 2.9 M IPv4-hinting HTTPS-RR domains (1:1000) + the floored
  // non-Cloudflare providers.
  EXPECT_GT(https, 2500u);
  EXPECT_LT(https, 4000u);
}

TEST(Calibration, AkamaiVersionEvolutionEndpoints) {
  // Week 5: ~10 % of Akamai announces draft-29; week 18: ~95 %.
  auto share_at = [](int week) {
    Population population({.dns_corpus_scale = 0.01}, week);
    size_t with = 0, total = 0;
    for (const auto& host : population.hosts()) {
      if (host.group != "akamai" || !host.address.is_v4()) continue;
      ++total;
      for (quic::Version v : host.advertised_versions)
        if (v == quic::kDraft29) {
          ++with;
          break;
        }
    }
    return total ? static_cast<double>(with) / static_cast<double>(total)
                 : 0.0;
  };
  EXPECT_LT(share_at(5), 0.2);
  EXPECT_GT(share_at(18), 0.9);
}

}  // namespace
