// Wire toolkit tests: integer primitives, QUIC varints (RFC 9000
// section 16 + Appendix A.1 examples), hex codec, length framing.
#include <gtest/gtest.h>

#include "wire/buffer.h"

namespace {

TEST(Writer, BigEndianIntegers) {
  wire::Writer w;
  w.u8(0x01);
  w.u16(0x0203);
  w.u24(0x040506);
  w.u32(0x0708090a);
  w.u64(0x0b0c0d0e0f101112);
  EXPECT_EQ(wire::to_hex(w.span()), "0102030405060708090a0b0c0d0e0f101112");
}

TEST(Reader, BigEndianIntegers) {
  auto data = wire::from_hex("0102030405060708090a0b0c0d0e0f101112");
  wire::Reader r(data);
  EXPECT_EQ(r.u8(), 0x01);
  EXPECT_EQ(r.u16(), 0x0203);
  EXPECT_EQ(r.u24(), 0x040506u);
  EXPECT_EQ(r.u32(), 0x0708090au);
  EXPECT_EQ(r.u64(), 0x0b0c0d0e0f101112ull);
  EXPECT_TRUE(r.done());
}

TEST(Reader, ThrowsOnOverrun) {
  auto data = wire::from_hex("01");
  wire::Reader r(data);
  EXPECT_EQ(r.u8(), 1);
  EXPECT_THROW(r.u8(), wire::DecodeError);
}

TEST(Varint, Rfc9000AppendixExamples) {
  // RFC 9000 A.1 sample decodings.
  struct Case {
    const char* hex;
    uint64_t value;
  } cases[] = {
      {"c2197c5eff14e88c", 151288809941952652ull},
      {"9d7f3e7d", 494878333ull},
      {"7bbd", 15293ull},
      {"25", 37ull},
  };
  for (const auto& c : cases) {
    auto bytes = wire::from_hex(c.hex);
    wire::Reader r(bytes);
    EXPECT_EQ(r.varint(), c.value) << c.hex;
    EXPECT_TRUE(r.done());
    wire::Writer w;
    w.varint(c.value);
    EXPECT_EQ(wire::to_hex(w.span()), c.hex);
  }
}

TEST(Varint, RejectsOutOfRange) {
  wire::Writer w;
  EXPECT_THROW(w.varint(uint64_t{1} << 62), std::invalid_argument);
  EXPECT_NO_THROW(w.varint(wire::kVarintMax));
}

class VarintRoundTrip : public ::testing::TestWithParam<uint64_t> {};

TEST_P(VarintRoundTrip, EncodeDecodeIdentity) {
  uint64_t v = GetParam();
  wire::Writer w;
  w.varint(v);
  EXPECT_EQ(w.size(), wire::varint_size(v));
  wire::Reader r(w.span());
  EXPECT_EQ(r.varint(), v);
  EXPECT_TRUE(r.done());
}

INSTANTIATE_TEST_SUITE_P(
    Boundaries, VarintRoundTrip,
    ::testing::Values(0ull, 1ull, 62ull, 63ull, 64ull, 16382ull, 16383ull,
                      16384ull, 1073741822ull, 1073741823ull, 1073741824ull,
                      wire::kVarintMax - 1, wire::kVarintMax));

TEST(Hex, RoundTrip) {
  auto bytes = wire::from_hex("00ff10ab");
  EXPECT_EQ(bytes.size(), 4u);
  EXPECT_EQ(wire::to_hex(bytes), "00ff10ab");
}

TEST(Hex, UppercaseAccepted) {
  EXPECT_EQ(wire::from_hex("ABCD"), wire::from_hex("abcd"));
}

TEST(Hex, RejectsMalformed) {
  EXPECT_THROW(wire::from_hex("abc"), std::invalid_argument);
  EXPECT_THROW(wire::from_hex("zz"), std::invalid_argument);
}

TEST(Writer, LengthFraming) {
  wire::Writer w;
  w.u8(0xaa);
  size_t at = w.begin_length(2);
  w.str("hello");
  w.fill_length(at, 2);
  EXPECT_EQ(wire::to_hex(w.span()), "aa000568656c6c6f");
}

TEST(Writer, ThreeByteLengthFraming) {
  wire::Writer w;
  size_t at = w.begin_length(3);
  w.zeros(300);
  w.fill_length(at, 3);
  wire::Reader r(w.span());
  EXPECT_EQ(r.u24(), 300u);
}

TEST(Reader, RestConsumesEverything) {
  auto data = wire::from_hex("010203");
  wire::Reader r(data);
  r.u8();
  auto rest = r.rest();
  EXPECT_EQ(rest.size(), 2u);
  EXPECT_TRUE(r.done());
}

}  // namespace
