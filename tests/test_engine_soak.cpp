// Soak test for the sharded campaign engine (ctest label: soak; run it
// alone with `ctest -L soak`, exclude it with `ctest -LE soak`). A
// 10'000-target stateful campaign at --jobs 8 must agree with the
// serial run on every Table 3 outcome count -- zero drift, not
// approximately zero -- and the whole exercise must stay inside a
// bounded memory footprint. The ASan tree runs this same binary under
// leak detection, so per-attempt allocations that escape their shard
// world fail the build there. The report-pipeline soak holds the
// streaming report JSON of the same campaign to byte-identity across
// jobs 1/2/4/8 and against an offline CSV replay.
#include <gtest/gtest.h>
#include <sys/resource.h>

#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "engine/engine.h"
#include "internet/internet.h"
#include "report/csv.h"
#include "report/report.h"
#include "scanner/qscanner.h"
#include "telemetry/metrics.h"

namespace {

constexpr uint64_t kSeed = 0x5ca9;
constexpr int kWeek = 18;
constexpr size_t kTargets = 10'000;
constexpr internet::PopulationParams kPopulation{.dns_corpus_scale = 0.01};

// 10k targets cycled over the population's IPv4 hosts, so the list is
// larger than the host set and every shard revisits hosts -- the
// worst case for hidden cross-attempt state.
/// One snapshot shared by every campaign in this binary; world
/// construction is pure over (params, week).
std::shared_ptr<const internet::Snapshot> shared_snapshot() {
  static auto snapshot =
      std::make_shared<const internet::Snapshot>(kPopulation, kWeek);
  return snapshot;
}

std::vector<scanner::QscanTarget> soak_targets() {
  netsim::EventLoop loop;
  internet::Internet net(shared_snapshot(), loop);
  std::vector<scanner::QscanTarget> base;
  for (const auto& host : net.population().hosts()) {
    if (!host.address.is_v4()) continue;
    base.push_back({host.address, std::nullopt,
                    host.advertised_versions});
  }
  std::vector<scanner::QscanTarget> targets;
  targets.reserve(kTargets);
  for (size_t i = 0; i < kTargets; ++i)
    targets.push_back(base[i % base.size()]);
  return targets;
}

struct SoakOutcome {
  std::map<std::string, uint64_t> outcome_counts;
  uint64_t attempts = 0;
  size_t rows = 0;
};

SoakOutcome run_soak(const std::vector<scanner::QscanTarget>& targets,
                     int jobs) {
  engine::CampaignOptions options;
  options.jobs = jobs;
  options.seed = kSeed;
  options.week = kWeek;
  options.population = kPopulation;
  options.snapshot = shared_snapshot();
  engine::Campaign campaign(options);

  // Under the dynamic default the slice count is the chunk count, not
  // jobs -- size every slot vector with slot_count.
  const size_t slots = campaign.slot_count(targets.size());
  std::vector<size_t> shard_rows(slots, 0);
  std::vector<uint64_t> shard_attempts(slots, 0);
  campaign.run(targets.size(), [&](engine::ShardEnv& env) {
    scanner::QscanOptions qopt;
    qopt.seed = env.seed;
    qopt.metrics = env.metrics;
    scanner::QScanner qscanner(env.internet->network(), qopt);
    for (size_t i = env.range.begin; i < env.range.end; ++i) {
      if (!qscanner.compatible(targets[i])) continue;
      qscanner.scan_one(targets[i]);
      ++shard_rows[static_cast<size_t>(env.shard_index)];
    }
    shard_attempts[static_cast<size_t>(env.shard_index)] =
        qscanner.attempts();
  });

  SoakOutcome out;
  for (size_t s = 0; s < slots; ++s) {
    out.rows += shard_rows[s];
    out.attempts += shard_attempts[s];
  }
  for (int i = 0; i < 5; ++i) {
    auto name = scanner::to_string(static_cast<scanner::QscanOutcome>(i));
    const auto* counter =
        campaign.metrics().find_counter("qscan.outcome." + name);
    out.outcome_counts[name] = counter ? counter->value() : 0;
  }
  return out;
}

TEST(EngineSoak, TenThousandTargetsZeroOutcomeDriftAtJobs8) {
  auto targets = soak_targets();
  ASSERT_EQ(targets.size(), kTargets);

  auto serial = run_soak(targets, 1);
  auto sharded = run_soak(targets, 8);

  // Sanity: the campaign really scanned (nearly) everything -- only
  // version-incompatible targets are filtered before an attempt.
  EXPECT_GT(serial.rows, kTargets / 2);
  EXPECT_EQ(serial.rows, serial.attempts);

  // The contract: zero drift, outcome class by outcome class.
  EXPECT_EQ(sharded.rows, serial.rows);
  EXPECT_EQ(sharded.attempts, serial.attempts);
  EXPECT_EQ(sharded.outcome_counts, serial.outcome_counts);

  // Every attempt is accounted for by exactly one outcome class.
  uint64_t classified = 0;
  for (const auto& [name, count] : serial.outcome_counts)
    classified += count;
  EXPECT_EQ(classified, serial.attempts);

  // Bounded footprint: two 10k campaigns plus ten shard worlds must
  // not balloon the peak RSS. The bound is deliberately generous (the
  // run needs well under 1 GiB even under ASan); it exists to catch
  // unbounded growth, e.g. shard worlds kept alive after the merge.
  struct rusage usage;
  ASSERT_EQ(getrusage(RUSAGE_SELF, &usage), 0);
  EXPECT_LT(usage.ru_maxrss, 4L * 1024 * 1024);  // KiB on Linux: < 4 GiB
}

struct ReportSoak {
  std::string json;
  std::string csv;
};

// The qscanner_cli --targets --report pipeline at soak scale: rows
// stream into per-shard accumulator slots, and the artifact is the
// shard-order fold.
ReportSoak run_report_soak(const std::vector<scanner::QscanTarget>& targets,
                           int jobs) {
  engine::CampaignOptions options;
  options.jobs = jobs;
  options.seed = kSeed;
  options.week = kWeek;
  options.population = kPopulation;
  options.snapshot = shared_snapshot();
  engine::Campaign campaign(options);

  const size_t slots = campaign.slot_count(targets.size());
  std::vector<std::vector<report::QscanRowFeatures>> shard_rows(slots);
  engine::ShardFold<report::ReportAccumulator> fold(
      slots, [] { return report::ReportAccumulator("qscanner"); });
  campaign.run(targets.size(), [&](engine::ShardEnv& env) {
    auto& acc = fold.slot(env.shard_index);
    acc.attach_metrics(env.metrics);
    const auto& registry = env.internet->population().as_registry();
    scanner::QscanOptions qopt;
    qopt.seed = env.seed;
    qopt.metrics = env.metrics;
    scanner::QScanner qscanner(env.internet->network(), qopt);
    auto& rows = shard_rows[static_cast<size_t>(env.shard_index)];
    for (size_t i = env.range.begin; i < env.range.end; ++i) {
      if (!qscanner.compatible(targets[i])) continue;
      auto features = report::features_of(qscanner.scan_one(targets[i]));
      acc.add_row(features, registry.asn_for(targets[i].address));
      rows.push_back(std::move(features));
    }
  });

  ReportSoak out;
  out.csv = std::string(report::kQscanCsvHeader) + "\n";
  for (const auto& features : engine::concat_shards(std::move(shard_rows)))
    out.csv += report::to_csv_row(features) + "\n";
  std::ostringstream json;
  report::write_report_json(json, fold.merged());
  out.json = json.str();
  return out;
}

TEST(EngineSoak, TenThousandTargetReportByteIdenticalAcrossJobs) {
  auto targets = soak_targets();
  ASSERT_EQ(targets.size(), kTargets);

  auto baseline = run_report_soak(targets, 1);
  ASSERT_FALSE(baseline.json.empty());
  for (int jobs : {2, 4, 8}) {
    auto run = run_report_soak(targets, jobs);
    EXPECT_EQ(run.json, baseline.json) << "jobs " << jobs;
    EXPECT_EQ(run.csv, baseline.csv) << "jobs " << jobs;
  }

  // Offline replay of the merged campaign CSV (the qreport_cli path)
  // reproduces the streaming report byte for byte at soak scale.
  internet::AsRegistry registry = internet::campaign_as_registry(240);
  report::ReportAccumulator replay("qscanner");
  auto rows = report::parse_csv(baseline.csv);
  ASSERT_GT(rows.size(), 1u);
  for (size_t i = 1; i < rows.size(); ++i) {
    auto features = report::features_from_csv(rows[i]);
    ASSERT_TRUE(features.has_value()) << "row " << i;
    auto addr = netsim::IpAddress::parse(features->address);
    ASSERT_TRUE(addr.has_value()) << "row " << i;
    replay.add_row(*features, registry.asn_for(*addr));
  }
  std::ostringstream replay_json;
  report::RenderOptions render;
  render.as_registry = &registry;
  report::write_report_json(replay_json, replay, render);
  EXPECT_EQ(replay_json.str(), baseline.json);
}

}  // namespace
