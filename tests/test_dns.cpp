// DNS tests: wire codec (names, RRs incl. SVCB/HTTPS SvcParams),
// authoritative serving, CNAME chasing and bulk resolution.
#include <gtest/gtest.h>

#include "dns/resolver.h"
#include "dns/wire.h"

namespace {

using namespace dns;
using netsim::IpAddress;

TEST(Name, EncodeDecodeRoundTrip) {
  for (const char* name :
       {"example.com", "www.example.com", "a.b.c.d.e.f", "xn--bcher-kva.tld"}) {
    wire::Writer w;
    encode_name(w, name);
    wire::Reader r(w.span());
    EXPECT_EQ(decode_name(r, w.span()), name);
    EXPECT_TRUE(r.done());
  }
}

TEST(Name, NormalizationLowercasesAndStripsDot) {
  EXPECT_EQ(normalize_name("WWW.Example.COM."), "www.example.com");
  wire::Writer w;
  encode_name(w, "WWW.EXAMPLE.COM");
  wire::Reader r(w.span());
  EXPECT_EQ(decode_name(r, w.span()), "www.example.com");
}

TEST(Name, RootEncodesAsSingleZero) {
  wire::Writer w;
  encode_name(w, "");
  EXPECT_EQ(w.size(), 1u);
  EXPECT_EQ(w.span()[0], 0);
}

TEST(Name, CompressionPointerDecoding) {
  // Hand-built: "example.com" at offset 0, then a pointer to it.
  wire::Writer w;
  encode_name(w, "example.com");
  size_t ptr_at = w.size();
  w.u8(0xc0);
  w.u8(0x00);
  wire::Reader r(w.span());
  r.skip(ptr_at);
  EXPECT_EQ(decode_name(r, w.span()), "example.com");
}

TEST(Name, RejectsPointerLoop) {
  wire::Writer w;
  w.u8(0xc0);
  w.u8(0x00);  // points at itself
  wire::Reader r(w.span());
  EXPECT_THROW(decode_name(r, w.span()), wire::DecodeError);
}

TEST(Wire, QueryMessageRoundTrip) {
  Message msg;
  msg.id = 0x1234;
  msg.recursion_desired = true;
  msg.questions.push_back({"example.com", RRType::kHttps});
  auto decoded = decode_message(encode_message(msg));
  EXPECT_EQ(decoded.id, 0x1234);
  EXPECT_FALSE(decoded.is_response);
  ASSERT_EQ(decoded.questions.size(), 1u);
  EXPECT_EQ(decoded.questions[0].name, "example.com");
  EXPECT_EQ(decoded.questions[0].type, RRType::kHttps);
}

TEST(Wire, ARecordRoundTrip) {
  Message msg;
  msg.is_response = true;
  msg.answers.push_back(
      {"example.com", RRType::kA, 300, ARecord{IpAddress::v4(0x01020304)}});
  auto decoded = decode_message(encode_message(msg));
  ASSERT_EQ(decoded.answers.size(), 1u);
  EXPECT_EQ(std::get<ARecord>(decoded.answers[0].data).address.to_string(),
            "1.2.3.4");
}

TEST(Wire, AaaaRecordRoundTrip) {
  Message msg;
  msg.is_response = true;
  msg.answers.push_back({"example.com", RRType::kAaaa, 300,
                         AaaaRecord{*IpAddress::parse("2606:4700::1")}});
  auto decoded = decode_message(encode_message(msg));
  EXPECT_EQ(std::get<AaaaRecord>(decoded.answers[0].data).address.to_string(),
            "2606:4700::1");
}

TEST(Wire, HttpsRecordWithSvcParams) {
  SvcbData svcb;
  svcb.priority = 1;
  svcb.target = ".";
  svcb.alpn = {"h3", "h3-29", "h2"};
  svcb.port = 443;
  svcb.ipv4_hints = {IpAddress::v4(0x68100001), IpAddress::v4(0x68100002)};
  svcb.ipv6_hints = {*IpAddress::parse("2606:4700::1")};
  Message msg;
  msg.is_response = true;
  msg.answers.push_back({"example.com", RRType::kHttps, 300, svcb});
  auto decoded = decode_message(encode_message(msg));
  const auto& d = std::get<SvcbData>(decoded.answers[0].data);
  EXPECT_EQ(d, svcb);
}

TEST(Wire, AliasModeSvcb) {
  SvcbData svcb;
  svcb.priority = 0;
  svcb.target = "pool.svc.example";
  Message msg;
  msg.is_response = true;
  msg.answers.push_back({"example.com", RRType::kSvcb, 60, svcb});
  auto decoded = decode_message(encode_message(msg));
  const auto& d = std::get<SvcbData>(decoded.answers[0].data);
  EXPECT_TRUE(d.alias_mode());
  EXPECT_EQ(d.target, "pool.svc.example");
}

ZoneStore make_store() {
  ZoneStore store;
  store.add({"example.com", RRType::kA, 300, ARecord{IpAddress::v4(0x01010101)}});
  store.add({"example.com", RRType::kAaaa, 300,
             AaaaRecord{*IpAddress::parse("2001:db8::1")}});
  SvcbData https;
  https.alpn = {"h3", "h3-29"};
  https.ipv4_hints = {IpAddress::v4(0x01010101)};
  store.add({"example.com", RRType::kHttps, 300, https});
  store.add({"www.example.com", RRType::kCname, 300,
             CnameRecord{"example.com"}});
  store.add({"nodata.example.com", RRType::kTxt, 300, TxtRecord{"x"}});
  return store;
}

TEST(ZoneStore, ServeAnswersAndNxdomain) {
  auto store = make_store();
  Resolver resolver(store);
  auto result = resolver.resolve("example.com", RRType::kA);
  EXPECT_EQ(result.rcode, RCode::kNoError);
  ASSERT_EQ(result.addresses().size(), 1u);
  EXPECT_EQ(result.addresses()[0].to_string(), "1.1.1.1");

  auto missing = resolver.resolve("nosuch.example.com", RRType::kA);
  EXPECT_EQ(missing.rcode, RCode::kNxDomain);

  auto nodata = resolver.resolve("nodata.example.com", RRType::kA);
  EXPECT_EQ(nodata.rcode, RCode::kNoError);
  EXPECT_TRUE(nodata.addresses().empty());
}

TEST(Resolver, FollowsCname) {
  auto store = make_store();
  Resolver resolver(store);
  auto result = resolver.resolve("www.example.com", RRType::kA);
  EXPECT_EQ(result.rcode, RCode::kNoError);
  ASSERT_EQ(result.addresses().size(), 1u);
  EXPECT_EQ(result.addresses()[0].to_string(), "1.1.1.1");
  // Answer section contains the chain (CNAME + A).
  EXPECT_EQ(result.answers.size(), 2u);
}

TEST(Resolver, DetectsCnameLoops) {
  ZoneStore store;
  store.add({"a.example", RRType::kCname, 60, CnameRecord{"b.example"}});
  store.add({"b.example", RRType::kCname, 60, CnameRecord{"a.example"}});
  Resolver resolver(store);
  auto result = resolver.resolve("a.example", RRType::kA);
  EXPECT_EQ(result.rcode, RCode::kServFail);
}

TEST(Resolver, HttpsRecordResolution) {
  auto store = make_store();
  Resolver resolver(store);
  auto result = resolver.resolve("example.com", RRType::kHttps);
  auto svcb = result.svcb();
  ASSERT_EQ(svcb.size(), 1u);
  EXPECT_EQ(svcb[0].alpn, (std::vector<std::string>{"h3", "h3-29"}));
  ASSERT_EQ(svcb[0].ipv4_hints.size(), 1u);
}

TEST(BulkResolver, ResolvesAllTypesPerDomain) {
  auto store = make_store();
  BulkResolver bulk(store);
  auto records = bulk.resolve_all({"example.com", "www.example.com",
                                   "missing.example"});
  ASSERT_EQ(records.size(), 3u);
  EXPECT_EQ(records[0].a.size(), 1u);
  EXPECT_EQ(records[0].aaaa.size(), 1u);
  EXPECT_TRUE(records[0].has_https_rr());
  EXPECT_EQ(records[1].a.size(), 1u);  // via CNAME
  EXPECT_FALSE(records[2].has_https_rr());
  EXPECT_TRUE(records[2].a.empty());
  // 3 queries per domain.
  EXPECT_EQ(bulk.queries_sent(), 3u * 3u + 1u /* CNAME chase for www A */ +
                                     1u /* CNAME chase for www AAAA */ +
                                     1u /* CNAME chase for www HTTPS */);
}

TEST(Resolver, ChasesSvcbAliasMode) {
  ZoneStore store;
  SvcbData alias;
  alias.priority = 0;  // AliasMode
  alias.target = "svc.pool.example";
  store.add({"www.example", RRType::kHttps, 300, alias});
  SvcbData service;
  service.priority = 1;
  service.alpn = {"h3"};
  service.ipv4_hints = {IpAddress::v4(0x01020304)};
  store.add({"svc.pool.example", RRType::kHttps, 300, service});

  Resolver resolver(store);
  auto result = resolver.resolve("www.example", RRType::kHttps);
  EXPECT_EQ(result.rcode, RCode::kNoError);
  auto svcb = result.svcb();
  ASSERT_EQ(svcb.size(), 1u);
  EXPECT_FALSE(svcb[0].alias_mode());
  EXPECT_EQ(svcb[0].alpn, (std::vector<std::string>{"h3"}));
}

TEST(Resolver, DetectsAliasModeLoops) {
  ZoneStore store;
  SvcbData a, b;
  a.priority = 0;
  a.target = "b.example";
  b.priority = 0;
  b.target = "a.example";
  store.add({"a.example", RRType::kHttps, 300, a});
  store.add({"b.example", RRType::kHttps, 300, b});
  Resolver resolver(store);
  EXPECT_EQ(resolver.resolve("a.example", RRType::kHttps).rcode,
            RCode::kServFail);
}

}  // namespace
