// Discovery-method comparison: runs the paper's three QUIC discovery
// channels -- ZMap forced version negotiation, TLS-over-TCP Alt-Svc
// headers, and HTTPS DNS resource records -- over the same synthetic
// internet and shows what each one uniquely contributes (section 4).
//
//   ./build/examples/discovery_comparison [week]
#include <cstdio>
#include <cstdlib>
#include <set>

#include "analysis/stats.h"
#include "http/alpn.h"
#include "internet/internet.h"
#include "scanner/dns_scan.h"
#include "scanner/tcp_tls.h"
#include "scanner/zmap.h"

int main(int argc, char** argv) {
  int week = argc > 1 ? std::atoi(argv[1]) : 18;
  netsim::EventLoop loop;
  internet::Internet internet({.dns_corpus_scale = 0.02}, week, loop);
  const auto& pop = internet.population();
  std::printf("synthetic internet, calendar week %d: %zu hosts\n\n", week,
              pop.hosts().size());

  // Channel 1: ZMap sweep.
  scanner::ZmapQuicScanner zmap(internet.network(), {});
  std::set<netsim::IpAddress> zmap_addrs;
  for (const auto& hit : zmap.scan(internet.zmap_candidates_v4()))
    zmap_addrs.insert(hit.address);
  for (const auto& hit : zmap.scan(internet.ipv6_hitlist()))
    zmap_addrs.insert(hit.address);
  std::printf("[zmap]    %zu addresses via forced version negotiation\n",
              zmap_addrs.size());

  // Channel 2: Alt-Svc from TLS-over-TCP (one connection per domain).
  scanner::TcpTlsScanner tcp(internet.network(), {});
  std::set<netsim::IpAddress> alt_svc_addrs;
  for (const auto& domain : pop.domains()) {
    for (auto* hosts : {&domain.v4_hosts, &domain.v6_hosts}) {
      if (hosts->empty()) continue;
      const auto& host = pop.hosts()[(*hosts)[0]];
      auto result = tcp.scan_one({host.address, domain.name});
      for (const auto& entry : result.alt_svc)
        if (http::alpn_implies_quic(entry.alpn))
          alt_svc_addrs.insert(host.address);
    }
  }
  std::printf("[alt-svc] %zu addresses via HTTP Alt-Svc headers\n",
              alt_svc_addrs.size());

  // Channel 3: HTTPS DNS RRs (one recursive query per domain).
  scanner::DnsScanner dns(internet.zones());
  std::set<netsim::IpAddress> https_addrs;
  for (const char* list : {"alexa", "czds"}) {
    auto scan = dns.scan_list(list, internet.list_corpus(list));
    for (const auto& record : scan.records)
      for (const auto& svcb : record.https) {
        https_addrs.insert(svcb.ipv4_hints.begin(), svcb.ipv4_hints.end());
        https_addrs.insert(svcb.ipv6_hints.begin(), svcb.ipv6_hints.end());
      }
  }
  std::printf("[https]   %zu addresses via HTTPS DNS RR hints "
              "(%llu DNS queries)\n\n",
              https_addrs.size(),
              static_cast<unsigned long long>(dns.queries_sent()));

  // What does each channel see that the others miss?
  auto unique_to = [&](const std::set<netsim::IpAddress>& mine,
                       const std::set<netsim::IpAddress>& other_a,
                       const std::set<netsim::IpAddress>& other_b) {
    size_t n = 0;
    for (const auto& addr : mine)
      if (!other_a.contains(addr) && !other_b.contains(addr)) ++n;
    return n;
  };
  std::printf("unique to zmap:    %zu (deployments without known domains)\n",
              unique_to(zmap_addrs, alt_svc_addrs, https_addrs));
  std::printf("unique to alt-svc: %zu (deployments ignoring forced VN, "
              "e.g. Hostinger's fleet)\n",
              unique_to(alt_svc_addrs, zmap_addrs, https_addrs));
  std::printf("unique to https:   %zu (addresses DNS rotated away from "
              "the sweep)\n",
              unique_to(https_addrs, zmap_addrs, alt_svc_addrs));

  std::printf("\ncost comparison (probe traffic):\n");
  std::printf("  zmap:    %llu bytes of padded UDP probes\n",
              static_cast<unsigned long long>(zmap.stats().bytes_sent));
  std::printf("  https:   one recursive DNS query per domain -- the "
              "lightweight channel the paper hopes wins long-term\n");
  return 0;
}
