// Edge-POP fingerprinting (section 5.2): combine QUIC transport
// parameters with HTTP Server header values to identify large providers
// operating deployments *outside* their own networks -- the paper's
// Facebook (proxygen-bolt) and Google (gvs 1.0) off-net discoveries.
//
//   ./build/examples/edge_pop_fingerprinting
#include <cstdio>
#include <map>
#include <set>

#include "internet/internet.h"
#include "internet/tp_catalog.h"
#include "scanner/qscanner.h"
#include "scanner/zmap.h"

int main() {
  netsim::EventLoop loop;
  internet::Internet internet({.dns_corpus_scale = 0.01}, 18, loop);
  const auto& registry = internet.population().as_registry();

  // Sweep, then complete handshakes with every compatible address.
  scanner::ZmapQuicScanner zmap(internet.network(), {});
  scanner::QScanner qscanner(internet.network(), {});
  struct Fingerprint {
    std::string server_value;
    std::string tp_key;
  };
  std::map<std::string, std::map<uint32_t, size_t>> sightings;
  for (const auto& hit : zmap.scan(internet.zmap_candidates_v4())) {
    scanner::QscanTarget target{hit.address, std::nullopt, hit.versions};
    if (!qscanner.compatible(target)) continue;
    auto result = qscanner.scan_one(target);
    if (result.outcome != scanner::QscanOutcome::kSuccess) continue;
    if (!result.server_header) continue;
    std::string key =
        *result.server_header + " | tp-config " +
        std::to_string(internet::tp_config_id_for_key(
            result.report.server_transport_params.config_key()));
    ++sightings[key][registry.asn_for(hit.address)];
  }

  std::printf("(Server header | transport-parameter config) fingerprints "
              "seen in more than 5 ASes:\n\n");
  for (const auto& [fingerprint, by_as] : sightings) {
    if (by_as.size() <= 5) continue;
    size_t total = 0;
    size_t home_as_share = 0;
    uint32_t top_asn = 0;
    for (const auto& [asn, count] : by_as) {
      total += count;
      if (count > home_as_share) {
        home_as_share = count;
        top_asn = asn;
      }
    }
    std::printf("%-40s  %3zu ASes  %4zu hosts  biggest AS: %s\n",
                fingerprint.c_str(), by_as.size(), total,
                registry.name(top_asn).c_str());
  }

  std::printf(
      "\nReading the output: a fingerprint that recurs across dozens of\n"
      "ASes but belongs to one implementation (proxygen-bolt -> mvfst ->\n"
      "Facebook; gvs 1.0 -> Google video serving) marks edge POPs that\n"
      "large providers operate inside other networks. Counting ASes alone\n"
      "(Table 2) would wrongly attribute those deployments to the hosting\n"
      "networks -- the paper's centralization warning.\n");
  return 0;
}
