// Quickstart: build a small synthetic internet, discover QUIC
// deployments with the ZMap module, and complete one stateful QScanner
// handshake -- the full pipeline of the paper in ~80 lines.
//
//   ./build/examples/quickstart
#include <cstdio>

#include "internet/internet.h"
#include "scanner/qscanner.h"
#include "scanner/zmap.h"

int main() {
  // 1. A synthetic internet for calendar week 18 of 2021 (the paper's
  //    main snapshot): providers, domains, DNS zones, failure modes.
  netsim::EventLoop loop;
  internet::Internet internet({.dns_corpus_scale = 0.01}, /*week=*/18, loop);
  std::printf("internet: %zu hosts, %zu domains, %zu DNS records\n",
              internet.population().hosts().size(),
              internet.population().domains().size(),
              internet.zones().record_count());

  // 2. Stateless discovery: the ZMap QUIC module forces a Version
  //    Negotiation with a padded Initial in a reserved version.
  scanner::ZmapQuicScanner zmap(internet.network(), {});
  auto hits = zmap.scan(internet.zmap_candidates_v4());
  std::printf("zmap: %zu probes -> %zu QUIC-capable addresses\n",
              static_cast<size_t>(zmap.stats().probes_sent), hits.size());

  // 3. Pick a Cloudflare-hosted domain as a stateful target.
  const auto& pop = internet.population();
  const internet::DomainInfo* domain = nullptr;
  const internet::HostProfile* host = nullptr;
  for (const auto& d : pop.domains()) {
    if (d.v4_hosts.empty()) continue;
    const auto& h = pop.hosts()[d.v4_hosts[0]];
    if (h.group == "cloudflare") {
      domain = &d;
      host = &h;
      break;
    }
  }
  if (!domain) {
    std::printf("no target found\n");
    return 1;
  }

  // 4. A full QUIC handshake with TLS 1.3, transport-parameter and HTTP
  //    extraction -- what QScanner does 26 million times in the paper.
  scanner::QScanner qscanner(internet.network(), {});
  auto result = qscanner.scan_one(
      {host->address, domain->name, host->advertised_versions});

  std::printf("\nscan of %s (SNI %s):\n", host->address.to_string().c_str(),
              domain->name.c_str());
  std::printf("  outcome:        %s\n",
              scanner::to_string(result.outcome).c_str());
  std::printf("  version:        %s\n",
              quic::version_name(result.report.negotiated_version).c_str());
  std::printf("  cipher:         %s\n",
              tls::cipher_suite_name(result.report.tls.cipher_suite).c_str());
  std::printf("  alpn:           %s\n",
              result.report.tls.selected_alpn.value_or("-").c_str());
  if (!result.report.tls.certificate_chain.empty()) {
    const auto& cert = result.report.tls.certificate_chain[0];
    std::printf("  certificate:    CN=%s (issuer %s)\n",
                cert.subject_cn.c_str(), cert.issuer_cn.c_str());
  }
  const auto& tp = result.report.server_transport_params;
  std::printf("  initial_max_data:          %llu\n",
              static_cast<unsigned long long>(tp.initial_max_data.value_or(0)));
  std::printf("  initial_max_stream_data:   %llu\n",
              static_cast<unsigned long long>(
                  tp.initial_max_stream_data_bidi_local.value_or(0)));
  std::printf("  max_udp_payload_size:      %llu\n",
              static_cast<unsigned long long>(
                  tp.effective_max_udp_payload_size()));
  std::printf("  HTTP Server header:        %s\n",
              result.server_header.value_or("-").c_str());
  return result.outcome == scanner::QscanOutcome::kSuccess ? 0 : 1;
}
