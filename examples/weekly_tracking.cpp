// Longitudinal tracking: replay the measurement weeks through the
// report pipeline and watch the standardization land -- Cloudflare
// flipping "Version 1" on before RFC 9000 shipped, Akamai adding
// draft-29 next to gQUIC, and HTTPS DNS RR adoption creeping up
// (sections 4.2 and 7).
//
// Each week is one report::ReportAccumulator fed from the ZMap sweep
// and the Alexa DNS scan -- the same subsystem behind the CLIs'
// --report flag -- so the weekly numbers come out of the version
// -support matrix and Figure 3 stats instead of ad-hoc counting, and
// the week 5 -> 18 drift prints through the report diff (the weekly
// workflow of qreport_cli --baseline).
//
//   ./build/examples/weekly_tracking
#include <cstdio>
#include <sstream>
#include <string>

#include "internet/internet.h"
#include "report/report.h"
#include "scanner/dns_scan.h"
#include "scanner/zmap.h"

namespace {

// One calendar week, aggregated by the report pipeline.
report::ReportAccumulator scan_week(int week) {
  netsim::EventLoop loop;
  internet::Internet internet({.dns_corpus_scale = 0.01}, week, loop);
  const auto& registry = internet.population().as_registry();

  report::ReportAccumulator acc("zmap");
  scanner::ZmapQuicScanner zmap(internet.network(), {});
  for (const auto& hit : zmap.scan(internet.zmap_candidates_v4()))
    acc.add_zmap_hit(hit.address.to_string(), hit.versions,
                     registry.asn_for(hit.address));

  scanner::DnsScanner dns(internet.zones());
  for (const auto& record :
       dns.scan_list("alexa", internet.list_corpus("alexa")).records)
    acc.add_dns_record("alexa", record);
  return acc;
}

uint64_t support(const report::ReportAccumulator& acc,
                 const std::string& key) {
  auto it = acc.version_support().find(key);
  return it == acc.version_support().end() ? 0 : it->second;
}

std::string report_json(const report::ReportAccumulator& acc) {
  std::ostringstream out;
  report::write_report_json(out, acc);
  return out.str();
}

}  // namespace

int main() {
  std::printf("week  addrs   ietf-01  draft-29  gQUIC    https-rr(alexa)\n");
  std::printf("--------------------------------------------------------\n");
  std::string week5_json, week18_json;
  for (int week : {5, 7, 9, 11, 14, 15, 16, 18}) {
    auto acc = scan_week(week);

    // The version-support matrix (Figures 5/6) and the per-list DNS
    // stats (Figure 3) carry every number the table needs.
    uint64_t addrs = acc.distinct_addresses();
    const auto& alexa = acc.dns_lists().at("alexa");
    auto share = [&](uint64_t n) {
      return addrs ? 100.0 * static_cast<double>(n) /
                         static_cast<double>(addrs)
                   : 0.0;
    };
    std::printf("%4d  %5llu   %5.1f %%  %5.1f %%   %5.1f %%  %5.1f %%\n",
                week, static_cast<unsigned long long>(addrs),
                share(support(acc, "ietf-01")),
                share(support(acc, "draft-29")),
                share(support(acc, "any-gquic")),
                alexa.resolved
                    ? 100.0 * static_cast<double>(alexa.with_https_rr) /
                          static_cast<double>(alexa.resolved)
                    : 0.0);

    if (week == 5) week5_json = report_json(acc);
    if (week == 18) week18_json = report_json(acc);
  }
  std::printf(
      "\nWhat to look for (paper, Figures 3/5/6): draft-29 climbing towards\n"
      "~96 %%, 'ietf-01' appearing before the RFC shipped (Cloudflare\n"
      "turned it on in week 16 despite draft 34's 'do not deploy' label),\n"
      "half the addresses still announcing gQUIC, and HTTPS-RR adoption\n"
      "rising every week.\n\n");

  // The same drift, metric by metric, as the report diff renders it --
  // what `qreport_cli --baseline week5/report.json` prints for real
  // campaigns.
  std::printf("Week 5 -> week 18 drift (report diff, excerpt):\n\n");
  std::string diff = report::render_report_diff(week5_json, week18_json);
  int lines = 0;
  for (size_t pos = 0; pos < diff.size() && lines < 30; ++lines) {
    size_t end = diff.find('\n', pos);
    if (end == std::string::npos) end = diff.size();
    std::printf("%.*s\n", static_cast<int>(end - pos), diff.c_str() + pos);
    pos = end + 1;
  }
  return 0;
}
