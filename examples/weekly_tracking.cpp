// Longitudinal tracking: replay the measurement weeks and watch the
// standardization land -- Cloudflare flipping "Version 1" on before RFC
// 9000 shipped, Akamai adding draft-29 next to gQUIC, and HTTPS DNS RR
// adoption creeping up (sections 4.2 and 7).
//
//   ./build/examples/weekly_tracking
#include <cstdio>

#include "internet/internet.h"
#include "scanner/dns_scan.h"
#include "scanner/zmap.h"

int main() {
  std::printf("week  addrs   ietf-01  draft-29  gQUIC    https-rr(alexa)\n");
  std::printf("--------------------------------------------------------\n");
  for (int week : {5, 7, 9, 11, 14, 15, 16, 18}) {
    netsim::EventLoop loop;
    internet::Internet internet({.dns_corpus_scale = 0.01}, week, loop);

    scanner::ZmapQuicScanner zmap(internet.network(), {});
    auto hits = zmap.scan(internet.zmap_candidates_v4());
    size_t v1 = 0, d29 = 0, gquic = 0;
    for (const auto& hit : hits) {
      bool has_v1 = false, has_d29 = false, has_g = false;
      for (quic::Version v : hit.versions) {
        if (v == quic::kVersion1) has_v1 = true;
        if (v == quic::kDraft29) has_d29 = true;
        if (quic::is_google(v)) has_g = true;
      }
      v1 += has_v1;
      d29 += has_d29;
      gquic += has_g;
    }

    scanner::DnsScanner dns(internet.zones());
    auto alexa = dns.scan_list("alexa", internet.list_corpus("alexa"));

    auto share = [&](size_t n) {
      return hits.empty() ? 0.0
                          : 100.0 * static_cast<double>(n) /
                                static_cast<double>(hits.size());
    };
    std::printf("%4d  %5zu   %5.1f %%  %5.1f %%   %5.1f %%  %5.1f %%\n",
                week, hits.size(), share(v1), share(d29), share(gquic),
                100.0 * alexa.https_rr_rate());
  }
  std::printf(
      "\nWhat to look for (paper, Figures 3/5/6): draft-29 climbing towards\n"
      "~96 %%, 'ietf-01' appearing before the RFC shipped (Cloudflare\n"
      "turned it on in week 16 despite draft 34's 'do not deploy' label),\n"
      "half the addresses still announcing gQUIC, and HTTPS-RR adoption\n"
      "rising every week.\n");
  return 0;
}
