// Handshake trace: an annotated, Figure-2-style ladder diagram of a
// real QUIC handshake against a simulated deployment -- including the
// optional Version Negotiation round the figure shows (the client first
// offers a version the server does not speak). Packet classification
// runs on the wire bytes via the netsim tap; nothing is read from
// connection internals.
//
//   ./build/examples/handshake_trace
#include <cstdio>

#include "internet/internet.h"
#include "quic/packet.h"
#include "scanner/qscanner.h"

namespace {

const char* type_name(const quic::DatagramInfo& info) {
  if (info.long_header && info.version == 0) return "VersionNegotiation";
  switch (info.type) {
    case quic::PacketType::kInitial: return "Initial";
    case quic::PacketType::kHandshake: return "Handshake";
    case quic::PacketType::kRetry: return "Retry";
    case quic::PacketType::kOneRtt: return "1-RTT";
    default: return "?";
  }
}

}  // namespace

int main() {
  netsim::EventLoop loop;
  internet::Internet internet({.dns_corpus_scale = 0.01}, 18, loop);
  const auto& pop = internet.population();

  // A Fastly host: speaks draft-29 only (so offering v1 triggers the
  // figure's Version Negotiation round) *and* demands a Retry.
  const internet::HostProfile* host = nullptr;
  const internet::DomainInfo* domain = nullptr;
  for (const auto& d : pop.domains()) {
    if (d.v4_hosts.empty()) continue;
    const auto& h = pop.hosts()[d.v4_hosts[0]];
    if (h.group == "fastly" && h.domain_ids.contains(d.id)) {
      host = &h;
      domain = &d;
      break;
    }
  }
  if (!host) return 1;

  std::printf("Scanner                                              %s\n",
              host->address.to_string().c_str());
  std::printf("  |                                                    |\n");
  internet.network().set_tap([&](const netsim::Endpoint& from,
                                 const netsim::Endpoint& to,
                                 std::span<const uint8_t> payload) {
    auto info = quic::peek_datagram(payload);
    if (!info) return;
    bool from_client = to.addr == host->address;
    char line[128];
    if (info->long_header && info->version == 0) {
      std::snprintf(line, sizeof line, "VersionNegotiation[%zu B]",
                    payload.size());
    } else if (info->long_header) {
      std::snprintf(line, sizeof line, "%s[%s, %zu B]", type_name(*info),
                    quic::version_name(info->version).c_str(),
                    payload.size());
    } else {
      std::snprintf(line, sizeof line, "1-RTT[%zu B]", payload.size());
    }
    if (from_client)
      std::printf("  |---- %-42s ---->|\n", line);
    else
      std::printf("  |<--- %-42s -----|\n", line);
    (void)from;
  });

  scanner::QscanOptions options;
  // Offer v1 first: Fastly only speaks draft-29/27, forcing the
  // optional Version Negotiation round from Figure 2.
  options.supported_versions = {quic::kVersion1, quic::kDraft29};
  scanner::QScanner qscanner(internet.network(), options);
  auto result = qscanner.scan_one({host->address, domain->name,
                                   {quic::kVersion1}});

  std::printf("  |                                                    |\n");
  std::printf("outcome: %s, version %s, retry=%s, alpn=%s, server='%s'\n",
              scanner::to_string(result.outcome).c_str(),
              quic::version_name(result.report.negotiated_version).c_str(),
              result.report.retry_used ? "yes" : "no",
              result.report.tls.selected_alpn.value_or("-").c_str(),
              result.server_header.value_or("-").c_str());
  std::printf(
      "\nCompare with the paper's Figure 2: Initial[CRYPTO[CH], PADDING],\n"
      "the optional Version Negotiation, the server's Initial[SH] +\n"
      "Handshake[EE, CERT, CV, FIN] flight, the client's Finished, and the\n"
      "1-RTT exchange carrying HANDSHAKE_DONE and the HTTP/3 request.\n");
  return 0;
}
