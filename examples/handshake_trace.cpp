// Handshake trace: an annotated, Figure-2-style ladder diagram of a
// real QUIC handshake against a simulated deployment -- including the
// optional Version Negotiation round the figure shows (the client first
// offers a version the server does not speak). The ladder is rebuilt
// from the connection's own telemetry trace (src/telemetry/): the same
// packet_sent / packet_received events qscanner_cli --qlog records,
// captured here in a MemorySink. The raw JSON-Lines rendering is
// printed afterwards.
//
//   ./build/examples/handshake_trace
#include <cstdio>
#include <iostream>
#include <memory>

#include "internet/internet.h"
#include "scanner/qscanner.h"
#include "telemetry/trace.h"

int main() {
  netsim::EventLoop loop;
  internet::Internet internet({.dns_corpus_scale = 0.01}, 18, loop);
  const auto& pop = internet.population();

  // A Fastly host: speaks draft-29 only (so offering v1 triggers the
  // figure's Version Negotiation round) *and* demands a Retry.
  const internet::HostProfile* host = nullptr;
  const internet::DomainInfo* domain = nullptr;
  for (const auto& d : pop.domains()) {
    if (d.v4_hosts.empty()) continue;
    const auto& h = pop.hosts()[d.v4_hosts[0]];
    if (h.group == "fastly" && h.domain_ids.contains(d.id)) {
      host = &h;
      domain = &d;
      break;
    }
  }
  if (!host) return 1;

  // Capture the attempt's qlog events in memory. QScanner asks the
  // factory for one sink per attempt; hand it a proxy so the events
  // stay readable after the scan returns.
  auto trace = std::make_shared<telemetry::MemorySink>();
  scanner::QscanOptions options;
  // Offer v1 first: Fastly only speaks draft-29/27, forcing the
  // optional Version Negotiation round from Figure 2.
  options.supported_versions = {quic::kVersion1, quic::kDraft29};
  options.trace_factory =
      [trace](const std::string&) -> std::unique_ptr<telemetry::TraceSink> {
    struct Proxy : telemetry::TraceSink {
      std::shared_ptr<telemetry::MemorySink> target;
      void on_event(const telemetry::TraceEvent& event) override {
        target->on_event(event);
      }
    };
    auto proxy = std::make_unique<Proxy>();
    proxy->target = trace;
    return proxy;
  };
  scanner::QScanner qscanner(internet.network(), options);
  auto result = qscanner.scan_one({host->address, domain->name,
                                   {quic::kVersion1}});

  std::printf("Scanner                                              %s\n",
              host->address.to_string().c_str());
  std::printf("  |                                                    |\n");
  for (const auto& event : trace->events()) {
    const telemetry::Value* type = event.find("packet_type");
    char line[128];
    if (event.type == telemetry::EventType::kPacketSent && type) {
      const auto* size = event.find("size");
      std::snprintf(line, sizeof line, "%s[%llu B]", type->str.c_str(),
                    static_cast<unsigned long long>(size ? size->num : 0));
      std::printf("  |---- %-42s ---->|\n", line);
    } else if (event.type == telemetry::EventType::kPacketReceived && type) {
      const auto* size = event.find("size");
      std::snprintf(line, sizeof line, "%s[%llu B]", type->str.c_str(),
                    static_cast<unsigned long long>(size ? size->num : 0));
      std::printf("  |<--- %-42s -----|\n", line);
    } else if (event.type == telemetry::EventType::kVersionNegotiation) {
      const auto* versions = event.find("server_versions");
      std::snprintf(line, sizeof line, "  (server speaks: %s)",
                    versions ? versions->str.c_str() : "?");
      std::printf("  |     %-42s      |\n", line);
    } else if (event.type == telemetry::EventType::kRetry) {
      std::printf("  |     %-42s      |\n", "  (address validation Retry)");
    }
  }
  std::printf("  |                                                    |\n");
  std::printf("outcome: %s, version %s, retry=%s, alpn=%s, server='%s'\n",
              scanner::to_string(result.outcome).c_str(),
              quic::version_name(result.report.negotiated_version).c_str(),
              result.report.retry_used ? "yes" : "no",
              result.report.tls.selected_alpn.value_or("-").c_str(),
              result.server_header.value_or("-").c_str());

  std::printf("\nThe same trace as qlog JSON-Lines (qscanner_cli --qlog):\n");
  for (const auto& event : trace->events())
    telemetry::write_json_line(std::cout, event);

  std::printf(
      "\nCompare with the paper's Figure 2: Initial[CRYPTO[CH], PADDING],\n"
      "the optional Version Negotiation, the server's Initial[SH] +\n"
      "Handshake[EE, CERT, CV, FIN] flight, the client's Finished, and the\n"
      "1-RTT exchange carrying HANDSHAKE_DONE and the HTTP/3 request.\n");
  return 0;
}
