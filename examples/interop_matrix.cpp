// Interop matrix: handshake compatibility between scanner builds and
// the implementation profiles deployed on the synthetic internet --
// the flavor of the QUIC Interop Runner the paper uses to justify
// trusting a quic-go-based scanner (section 3.4, reference [42]).
//
//   ./build/examples/interop_matrix
#include <cstdio>
#include <map>

#include "internet/internet.h"
#include "scanner/qscanner.h"

int main() {
  netsim::EventLoop loop;
  internet::Internet internet({.dns_corpus_scale = 0.01}, 18, loop);
  const auto& pop = internet.population();

  // One representative (host, hosted-domain) pair per implementation
  // profile that completes handshakes.
  struct Row {
    std::string label;
    netsim::IpAddress address;
    std::string sni;
    std::vector<quic::Version> advertised;
  };
  std::map<std::string, Row> rows;
  for (const auto& domain : pop.domains()) {
    if (domain.v4_hosts.empty()) continue;
    const auto& host = pop.hosts()[domain.v4_hosts[0]];
    if (!host.domain_ids.contains(domain.id)) continue;
    if (host.server_value.empty() || host.stall_handshake) continue;
    if (rows.contains(host.server_value)) continue;
    rows.emplace(host.server_value,
                 Row{host.server_value, host.address, domain.name,
                     host.advertised_versions});
    if (rows.size() >= 8) break;
  }

  struct Build {
    const char* label;
    std::vector<quic::Version> versions;
  } builds[] = {
      {"d27", {quic::kDraft27}},
      {"d29", {quic::kDraft29}},
      {"29/32/34", {quic::kDraft29, quic::kDraft32, quic::kDraft34}},
      {"v1", {quic::kVersion1}},
  };

  std::printf("%-28s", "server implementation");
  for (const auto& build : builds) std::printf("%-10s", build.label);
  std::printf("\n");
  for (size_t i = 0; i < 28 + 10 * std::size(builds); ++i)
    std::printf("-");
  std::printf("\n");

  for (const auto& [label, row] : rows) {
    std::printf("%-28s", label.c_str());
    for (const auto& build : builds) {
      scanner::QscanOptions options;
      options.supported_versions = build.versions;
      scanner::QScanner qscanner(internet.network(), options);
      scanner::QscanTarget target{row.address, row.sni, row.advertised};
      const char* cell;
      if (!qscanner.compatible(target)) {
        cell = "-";  // pre-filtered: no common version announced
      } else {
        auto result = qscanner.scan_one(target);
        cell = result.outcome == scanner::QscanOutcome::kSuccess ? "OK"
                                                                 : "FAIL";
      }
      std::printf("%-10s", cell);
    }
    std::printf("\n");
  }
  std::printf(
      "\n'-' = scanner pre-filters the target (no announced version in\n"
      "common); FAIL = attempted handshake did not complete. The paper's\n"
      "QScanner relied on quic-go's interop record to expect the OK column\n"
      "it got -- and this matrix shows why draft-29 support was the one\n"
      "that mattered in week 18.\n");
  return 0;
}
